package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"incbubbles/internal/failpoint"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/wal"
)

// scrapeParse fetches /metrics and parses the exposition. It returns
// errors instead of failing the test so concurrent scraper goroutines
// can use it.
func scrapeParse(baseURL string) (map[string]*telemetry.PromFamily, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return nil, fmt.Errorf("/metrics: content-type %q", ct)
	}
	return telemetry.ParseProm(resp.Body)
}

// promPoint finds the first sample of family that carries the tenant
// label, nil when the family or the tenant's series is absent. For
// histogram families any suffix row counts.
func promPoint(fams map[string]*telemetry.PromFamily, family, tenant string) *telemetry.PromPoint {
	f := fams[family]
	if f == nil {
		return nil
	}
	for i := range f.Points {
		if f.Points[i].Labels["tenant"] == tenant {
			return &f.Points[i]
		}
	}
	return nil
}

// requiredFamilies is every metric family the scrape must expose with a
// per-tenant label for every live tenant: the tenant registry families
// resolved at construction (serving-layer handles, WAL latency
// histograms), the ingest-driven core families, and the four
// scrape-synthesized series.
var requiredFamilies = []string{
	"server_batches_ingested",
	"server_queue_depth",
	"server_queue_wait_seconds",
	"server_apply_seconds",
	"server_http_requests",
	"server_http_request_seconds",
	"server_http_429",
	"server_http_503",
	"server_ladder_state",
	"server_last_checkpoint_age_seconds",
	"telemetry_events_dropped",
	"trace_spans_dropped",
	"distance_computed",
	"distance_pruned",
	"core_batches",
	"wal_appends",
	"wal_syncs",
	"wal_fsync_seconds",
	"wal_group_commit_seconds",
	"wal_checkpoint_seconds",
}

// TestMetricsScrapeChaos drives three tenants (two serial, one
// pipelined) from concurrent ingest goroutines while two scraper
// goroutines hammer /metrics. Every scrape must parse cleanly; the
// quiesced final scrape must carry a per-tenant series for every
// required family, report every ladder healthy, and — the distance
// accounting pin — its distance_computed text must equal both the
// tenant's sink counter and the vecmath counter's Computed() exactly.
func TestMetricsScrapeChaos(t *testing.T) {
	e := newTestEnv(t, Options{})
	tenants := []struct {
		name  string
		depth int
	}{{"alpha", 0}, {"beta", 0}, {"gamma", 2}}
	const bootN = 12
	for _, tc := range tenants {
		e.createTenant(t, tc.name, TenantConfig{
			Dim: 2, Bubbles: 8, PipelineDepth: tc.depth,
			CheckpointEvery: 2, Bootstrap: mkBootstrap(2, bootN, 31),
		})
	}

	// Pre-marshal the wire bodies on the test goroutine (wireBody may
	// t.Fatalf); the ingest goroutines only POST.
	const nBatches, perBatch = 6, 20
	bodies := make(map[string][][]byte, len(tenants))
	for i, tc := range tenants {
		for _, b := range mkInsertBatches(2, nBatches, perBatch, int64(40+i)) {
			rd := wireBody(t, b)
			raw, err := io.ReadAll(rd)
			if err != nil {
				t.Fatalf("read body: %v", err)
			}
			bodies[tc.name] = append(bodies[tc.name], raw)
		}
	}

	errc := make(chan error, len(tenants)+2)
	stop := make(chan struct{})
	var scrapers, ingesters sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := scrapeParse(e.ts.URL); err != nil {
					errc <- fmt.Errorf("concurrent scrape: %w", err)
					return
				}
			}
		}()
	}
	for _, tc := range tenants {
		ingesters.Add(1)
		go func(name string) {
			defer ingesters.Done()
			for i, raw := range bodies[name] {
				resp, err := http.Post(e.ts.URL+"/tenants/"+name+"/batches", "application/json", bytes.NewReader(raw))
				if err != nil {
					errc <- fmt.Errorf("%s batch %d: %w", name, i, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s batch %d: status %d", name, i, resp.StatusCode)
					return
				}
			}
		}(tc.name)
	}
	ingesters.Wait()
	close(stop)
	scrapers.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced: every batch is acked, so the counters are stable and the
	// scrape must agree with the internal accounting bit for bit.
	fams, err := scrapeParse(e.ts.URL)
	if err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	for _, tc := range tenants {
		for _, family := range requiredFamilies {
			if promPoint(fams, family, tc.name) == nil {
				t.Errorf("family %s has no series for tenant %s", family, tc.name)
			}
		}
		ladder := promPoint(fams, "server_ladder_state", tc.name)
		if ladder == nil || ladder.Value != 0 || ladder.Labels["reason"] != "healthy" {
			t.Errorf("tenant %s ladder = %+v, want healthy 0", tc.name, ladder)
		}

		tn, err := e.srv.Tenant(tc.name)
		if err != nil {
			t.Fatalf("tenant %s: %v", tc.name, err)
		}
		pt := promPoint(fams, "distance_computed", tc.name)
		if pt == nil {
			t.Fatalf("tenant %s: no distance_computed series", tc.name)
		}
		sinkV := tn.sink.Counter(telemetry.MetricDistanceComputed).Value()
		vecV := tn.sum.Set().Counter().Computed()
		if sinkV == 0 || sinkV != vecV {
			t.Errorf("tenant %s: sink distance %d, vecmath %d", tc.name, sinkV, vecV)
		}
		if want := strconv.FormatUint(vecV, 10); pt.Raw != want {
			t.Errorf("tenant %s: scraped distance_computed %q, want exactly %q", tc.name, pt.Raw, want)
		}
		ingested := promPoint(fams, "server_batches_ingested", tc.name)
		if want := strconv.Itoa(nBatches); ingested == nil || ingested.Raw != want {
			t.Errorf("tenant %s: scraped batches_ingested %+v, want %s", tc.name, ingested, want)
		}
	}
}

// TestMetricsLadderGaugeFlips poisons one tenant's WAL and requires the
// scrape to flip exactly that tenant's ladder gauge to 1 with the
// wal_poisoned reason label, while the healthy tenant stays at 0 with
// reason healthy.
func TestMetricsLadderGaugeFlips(t *testing.T) {
	reg := failpoint.New(7)
	e := newTestEnv(t, Options{Failpoints: reg})
	const bootN = 12
	e.createTenant(t, "sick", TenantConfig{Dim: 2, Bubbles: 8, CheckpointEvery: 4, Bootstrap: mkBootstrap(2, bootN, 31)})
	e.createTenant(t, "well", TenantConfig{Dim: 2, Bubbles: 8, CheckpointEvery: 4, Bootstrap: mkBootstrap(2, bootN, 32)})
	sickBatches := mkInsertBatches(2, 3, 16, 21)
	wellBatches := mkInsertBatches(2, 2, 16, 22)
	for i := 0; i < 2; i++ {
		if resp, body := e.ingest(t, "sick", sickBatches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("sick ingest %d: %d %v", i, resp.StatusCode, body)
		}
		if resp, body := e.ingest(t, "well", wellBatches[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("well ingest %d: %d %v", i, resp.StatusCode, body)
		}
	}

	fams, err := scrapeParse(e.ts.URL)
	if err != nil {
		t.Fatalf("pre-poison scrape: %v", err)
	}
	for _, name := range []string{"sick", "well"} {
		pt := promPoint(fams, "server_ladder_state", name)
		if pt == nil || pt.Value != 0 || pt.Labels["reason"] != "healthy" {
			t.Fatalf("pre-poison ladder %s = %+v, want healthy 0", name, pt)
		}
	}

	reg.ArmError(wal.FailAppendNoSpace, 1, failpoint.ErrNoSpace)
	if resp, body := e.ingest(t, "sick", sickBatches[2]); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poisoned ingest: %d %v", resp.StatusCode, body)
	}

	fams, err = scrapeParse(e.ts.URL)
	if err != nil {
		t.Fatalf("post-poison scrape: %v", err)
	}
	sick := promPoint(fams, "server_ladder_state", "sick")
	if sick == nil || sick.Value != 1 || sick.Labels["reason"] != "wal_poisoned" {
		t.Fatalf("poisoned ladder = %+v, want wal_poisoned 1", sick)
	}
	well := promPoint(fams, "server_ladder_state", "well")
	if well == nil || well.Value != 0 || well.Labels["reason"] != "healthy" {
		t.Fatalf("healthy ladder = %+v, want healthy 0", well)
	}
	if pt := promPoint(fams, "server_tenant_degraded", "sick"); pt == nil || pt.Raw != "1" {
		t.Fatalf("degraded counter = %+v, want exactly 1", pt)
	}
}

// TestMetricsDropCounters sizes the tenant's span ring far below its
// span rate and requires the scrape's trace_spans_dropped to go nonzero
// and to equal the ring's own Dropped() exactly; the event-ring drop
// counter must likewise mirror the event log's accounting.
func TestMetricsDropCounters(t *testing.T) {
	e := newTestEnv(t, Options{TraceCapacity: 8})
	const bootN = 12
	e.createTenant(t, "ring", TenantConfig{Dim: 2, Bubbles: 8, CheckpointEvery: 4, Bootstrap: mkBootstrap(2, bootN, 31)})
	for i, b := range mkInsertBatches(2, 12, 8, 23) {
		if resp, body := e.ingest(t, "ring", b); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d %v", i, resp.StatusCode, body)
		}
	}
	fams, err := scrapeParse(e.ts.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	tn, err := e.srv.Tenant("ring")
	if err != nil {
		t.Fatal(err)
	}
	if tn.tracer.Dropped() == 0 {
		t.Fatal("span ring with capacity 8 dropped nothing after 12 traced batches")
	}
	spans := promPoint(fams, "trace_spans_dropped", "ring")
	if want := strconv.FormatUint(tn.tracer.Dropped(), 10); spans == nil || spans.Raw != want {
		t.Fatalf("trace_spans_dropped = %+v, want exactly %s", spans, want)
	}
	events := promPoint(fams, "telemetry_events_dropped", "ring")
	if want := strconv.FormatUint(tn.sink.Events.Dropped(), 10); events == nil || events.Raw != want {
		t.Fatalf("telemetry_events_dropped = %+v, want exactly %s", events, want)
	}
}

// TestReadyzFlipsDuringDrain pins the health split: /readyz answers 200
// until Drain and 503 with the draining reason after, while /healthz
// (liveness) stays 200 throughout — a draining process is healthy, just
// not accepting.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	e := newTestEnv(t, Options{})
	const bootN = 12
	e.createTenant(t, "d", TenantConfig{Dim: 2, Bubbles: 8, Bootstrap: mkBootstrap(2, bootN, 31)})
	if resp, body := e.do(t, http.MethodGet, "/readyz", nil); resp.StatusCode != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz before drain: %d %v", resp.StatusCode, body)
	}
	if resp, body := e.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK || body["draining"] != false {
		t.Fatalf("healthz before drain: %d %v", resp.StatusCode, body)
	}
	if err := e.srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, body := e.do(t, http.MethodGet, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || body["ready"] != false || body["reason"] != ReasonDraining {
		t.Fatalf("readyz after drain: %d %v", resp.StatusCode, body)
	}
	if resp, body := e.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK || body["draining"] != true {
		t.Fatalf("healthz after drain: %d %v", resp.StatusCode, body)
	}
	// Metrics keep serving after drain (the scrape reads snapshots).
	if _, err := scrapeParse(e.ts.URL); err != nil {
		t.Fatalf("scrape after drain: %v", err)
	}
}

// TestTenantTraceEndpoint ingests through the instrumented HTTP path and
// requires the tenant's trace ring to serve a Chrome trace containing
// both the server-level root span and the core batch span beneath it,
// plus the flame-format variant; every response must carry the minted
// X-Request-Id. A trace-disabled server serves an empty (but valid)
// trace.
func TestTenantTraceEndpoint(t *testing.T) {
	e := newTestEnv(t, Options{})
	const bootN = 12
	e.createTenant(t, "tr", TenantConfig{Dim: 2, Bubbles: 8, Bootstrap: mkBootstrap(2, bootN, 31)})
	for i, b := range mkInsertBatches(2, 2, 16, 27) {
		resp, body := e.ingest(t, "tr", b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d %v", i, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Request-Id") == "" {
			t.Fatalf("ingest %d: no X-Request-Id header", i)
		}
	}

	resp, err := http.Get(e.ts.URL + "/tenants/tr/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("trace: no X-Request-Id header")
	}
	if !json.Valid(chrome) {
		t.Fatalf("trace: invalid JSON: %.200s", chrome)
	}
	for _, span := range []string{"server.ingest", "core.batch"} {
		if !bytes.Contains(chrome, []byte(span)) {
			t.Errorf("chrome trace missing span %q", span)
		}
	}

	resp, err = http.Get(e.ts.URL + "/tenants/tr/debug/trace?format=flame")
	if err != nil {
		t.Fatal(err)
	}
	flame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(flame, []byte("server.ingest")) {
		t.Fatalf("flame trace: status %d body %.200s", resp.StatusCode, flame)
	}

	// Tracing disabled: the nil-safe ring serves an empty, valid trace.
	e2 := newTestEnv(t, Options{TraceCapacity: -1})
	e2.createTenant(t, "off", TenantConfig{Dim: 2, Bubbles: 8, Bootstrap: mkBootstrap(2, bootN, 33)})
	if resp, body := e2.ingest(t, "off", mkInsertBatches(2, 1, 8, 29)[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced ingest: %d %v", resp.StatusCode, body)
	}
	resp, err = http.Get(e2.ts.URL + "/tenants/off/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	empty, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !json.Valid(empty) {
		t.Fatalf("disabled trace: status %d body %.200s", resp.StatusCode, empty)
	}
	if bytes.Contains(empty, []byte("server.ingest")) {
		t.Fatal("disabled trace still recorded spans")
	}
}

// TestDebugPprofGated pins the -debug gate: the pprof mux is absent by
// default and mounted only when Options.Debug is set.
func TestDebugPprofGated(t *testing.T) {
	e := newTestEnv(t, Options{})
	resp, err := http.Get(e.ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -debug: status %d, want 404", resp.StatusCode)
	}

	e2 := newTestEnv(t, Options{Debug: true})
	resp, err = http.Get(e2.ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(index, []byte("pprof")) {
		t.Fatalf("pprof with -debug: status %d body %.120s", resp.StatusCode, index)
	}
	resp, err = http.Get(e2.ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler writes
// from tenant workers and HTTP handlers concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestStructuredLogLines runs a request and a lifecycle through a JSON
// slog handler and requires one well-formed line per event: tenant open,
// the instrumented ingest request (request_id, route, status, tenant,
// latency, queue wait), the Debug-level health probe, and the drain
// bracket with the final checkpoint.
func TestStructuredLogLines(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	e := newTestEnv(t, Options{Logger: logger})
	const bootN = 12
	e.createTenant(t, "logt", TenantConfig{Dim: 2, Bubbles: 8, Bootstrap: mkBootstrap(2, bootN, 31)})
	if resp, body := e.ingest(t, "logt", mkInsertBatches(2, 1, 16, 35)[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %v", resp.StatusCode, body)
	}
	if resp, _ := e.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := e.srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var entries []map[string]any
	for i, line := range buf.lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line %d not JSON: %v: %s", i, err, line)
		}
		entries = append(entries, m)
	}
	find := func(pred func(map[string]any) bool) map[string]any {
		for _, m := range entries {
			if pred(m) {
				return m
			}
		}
		return nil
	}
	if m := find(func(m map[string]any) bool {
		return m["msg"] == "tenant open" && m["tenant"] == "logt"
	}); m == nil {
		t.Error("no 'tenant open' line for logt")
	}
	ingestLine := find(func(m map[string]any) bool {
		return m["msg"] == "request" && m["route"] == "ingest" && m["tenant"] == "logt"
	})
	if ingestLine == nil {
		t.Fatal("no request line for the ingest route")
	}
	if id, ok := ingestLine["request_id"].(float64); !ok || id < 1 {
		t.Errorf("ingest line request_id = %v", ingestLine["request_id"])
	}
	if st, ok := ingestLine["status"].(float64); !ok || int(st) != http.StatusOK {
		t.Errorf("ingest line status = %v", ingestLine["status"])
	}
	for _, key := range []string{"latency_ms", "queue_wait_ms"} {
		if _, ok := ingestLine[key].(float64); !ok {
			t.Errorf("ingest line missing %s: %v", key, ingestLine)
		}
	}
	if m := find(func(m map[string]any) bool {
		return m["msg"] == "request" && m["route"] == "healthz" && m["level"] == "DEBUG"
	}); m == nil {
		t.Error("no Debug-level request line for healthz")
	}
	for _, msg := range []string{"drain start", "drain done", "final checkpoint"} {
		msg := msg
		if m := find(func(m map[string]any) bool { return m["msg"] == msg }); m == nil {
			t.Errorf("no %q line", msg)
		}
	}
}
