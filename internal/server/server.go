// Package server implements bubbled, the long-running multi-tenant
// summarization service (DESIGN.md §15). Each tenant is a fully
// independent fault domain: its own core.Summarizer, WAL directory,
// seed, pipeline scheduler, and telemetry/trace namespace, fed through
// a bounded ingest queue by a single worker goroutine. Admission
// control (429 on overflow), a per-tenant degradation ladder (a
// poisoned WAL flips that tenant alone into read-only mode), and
// graceful drain (stop admissions, flush pipelines, final checkpoints)
// keep one tenant's faults from ever touching another's determinism
// guarantees.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"incbubbles/internal/failpoint"
	"incbubbles/internal/retry"
	"incbubbles/internal/trace"
)

// Common errors. Handlers map them onto status codes and machine-
// readable reason strings (http.go).
var (
	ErrTenantExists   = errors.New("server: tenant already exists")
	ErrUnknownTenant  = errors.New("server: unknown tenant")
	ErrDraining       = errors.New("server: draining, admissions stopped")
	ErrQueueFull      = errors.New("server: ingest queue full")
	ErrReadOnly       = errors.New("server: tenant is read-only")
	ErrBadTenantName  = errors.New("server: tenant name must match [A-Za-z0-9_-]{1,64}")
	ErrConfigMismatch = errors.New("server: tenant config mismatch")
	ErrBadBootstrap   = errors.New("server: bootstrap must supply at least as many points as bubbles")
	ErrBadBatch       = errors.New("server: bad batch")
)

var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// Options configures a Server.
type Options struct {
	// Root is the directory holding one subdirectory per tenant (the
	// tenant's config file and WAL). Required; created if missing.
	Root string
	// Seed is the base seed tenant seeds derive from when a tenant is
	// created without an explicit one. It must be stable across process
	// restarts: a tenant's derived seed must match the WAL it resumes.
	Seed int64
	// Defaults fills unset fields of every TenantConfig.
	Defaults TenantConfig
	// Failpoints optionally threads one fault-injection registry through
	// every tenant's core and WAL layers (the service-level chaos
	// harness arms it). Production runs leave it nil.
	Failpoints *failpoint.Registry
	// DrainTimeout bounds Drain when the caller's context has no
	// deadline (≤0 selects 30s).
	DrainTimeout time.Duration
	// Logger receives one structured line per tenant-routed request and
	// per lifecycle event (tenant opened/resumed, degraded, drain,
	// final checkpoint). Nil discards — the serving path never branches
	// on "is logging enabled".
	Logger *slog.Logger
	// Debug mounts the /debug/pprof/* handlers on the server mux
	// (cmd/bubbled's -debug flag). Off by default: profiling endpoints
	// are not for unauthenticated production exposure.
	Debug bool
	// TraceCapacity sizes each tenant's bounded span ring (0 selects
	// trace.DefaultCapacity, <0 disables tracing entirely — the bench
	// harness measures the untraced baseline that way).
	TraceCapacity int
	// Tracer, when non-nil, is shared by every tenant instead of a
	// per-tenant ring. Benchmarks inject a pre-sized tracer here;
	// production leaves it nil so /tenants/{t}/debug/trace stays
	// per-tenant.
	Tracer *trace.Tracer
}

// TenantConfig parameterises one tenant. The zero value of each field
// selects the server-wide default (Options.Defaults), then a built-in.
type TenantConfig struct {
	// Dim is the point dimensionality. Required on first creation;
	// validated against the resumed state on reopen.
	Dim int `json:"dim"`
	// Bubbles is the compression rate (core.Options.NumBubbles).
	Bubbles int `json:"bubbles"`
	// Seed overrides the derived per-tenant seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// QueueDepth bounds the ingest queue; admission returns 429 beyond
	// it (≤0 selects 16).
	QueueDepth int `json:"queue_depth,omitempty"`
	// PipelineDepth ≥ 1 runs ingestion through the staged pipeline with
	// WAL group commit (DESIGN.md §13); 0 is the serial path, which
	// propagates each request's deadline through ApplyBatchContext.
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// CheckpointEvery / KeepCheckpoints / GroupCommit tune the WAL
	// (wal.Options; ≤0 selects that layer's defaults).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	KeepCheckpoints int `json:"keep_checkpoints,omitempty"`
	GroupCommit     int `json:"group_commit,omitempty"`
	// RetryAttempts bounds the seeded-backoff redrive of group-commit
	// clean failures and the WAL's in-place checkpoint retries
	// (internal/retry; ≤0 selects 3, 1 disables).
	RetryAttempts int `json:"retry_attempts,omitempty"`
	// Bootstrap is the initial point set the first bubble build runs
	// over. Creating a fresh tenant requires at least Bubbles points (the
	// build cannot seed more bubbles than it has points); the bootstrap
	// lands in the initial checkpoint, so it is not a batch and never
	// counts toward the applied ordinal. Ignored when the tenant resumes
	// from durable state, and never persisted to the config file.
	Bootstrap [][]float64 `json:"bootstrap,omitempty"`

	// testGate, when non-nil (in-package tests only — unexported, so it
	// never travels over the wire or to disk), paces the tenant worker:
	// one receive per admitted request before processing. It makes
	// queue-overflow and mid-flight cancellation timing deterministic.
	testGate chan struct{}
}

// withDefaults overlays c on d and fills built-ins.
func (c TenantConfig) withDefaults(d TenantConfig) TenantConfig {
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Bubbles <= 0 {
		c.Bubbles = d.Bubbles
	}
	if c.Bubbles <= 0 {
		c.Bubbles = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = d.PipelineDepth
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = d.CheckpointEvery
	}
	if c.KeepCheckpoints <= 0 {
		c.KeepCheckpoints = d.KeepCheckpoints
	}
	if c.GroupCommit <= 0 {
		c.GroupCommit = d.GroupCommit
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = d.RetryAttempts
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	return c
}

// retryPolicy is the tenant's backoff policy for retryable ingest
// faults. The classifier is supplied at the call site (tenant.go): only
// group-commit clean failures — provably nothing consumed — retry.
func (c TenantConfig) retryPolicy(seed int64) retry.Policy {
	return retry.Policy{MaxAttempts: c.RetryAttempts, Seed: seed}
}

// deriveSeed gives a tenant a stable seed from the server base seed and
// its name, so a restarted server resumes each WAL under the seed that
// wrote it without persisting anything beyond the tenant config.
func deriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s := int64(h.Sum64()) ^ base
	if s == 0 {
		s = 1
	}
	return s
}

// Server hosts the tenants. All methods are safe for concurrent use.
type Server struct {
	opts   Options
	logger *slog.Logger

	mu      sync.RWMutex
	tenants map[string]*tenant

	// nextReqID mints the per-request IDs the HTTP layer stamps onto
	// logs, trace spans and the X-Request-Id header.
	nextReqID atomic.Uint64

	draining atomic.Bool
	//lint:lockcover blocking Drain deliberately holds drainMu while tenants flush so concurrent Drain calls wait for the first to finish
	drainMu sync.Mutex // serializes Drain
	drained bool
}

// discardLogger satisfies every slog call without output (go1.22 has no
// slog.DiscardHandler yet).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// New opens a server over Options.Root, resuming every tenant whose
// config file is already present (a restart is a New over the same
// root).
func New(opts Options) (*Server, error) {
	if opts.Root == "" {
		return nil, errors.New("server: Options.Root is required")
	}
	if err := os.MkdirAll(opts.Root, 0o755); err != nil {
		return nil, err
	}
	if opts.Logger == nil {
		opts.Logger = discardLogger()
	}
	s := &Server{opts: opts, logger: opts.Logger, tenants: make(map[string]*tenant)}
	entries, err := os.ReadDir(opts.Root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
			continue
		}
		cfg, err := loadTenantConfig(filepath.Join(opts.Root, e.Name()))
		if errors.Is(err, os.ErrNotExist) {
			continue // not a tenant directory
		}
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", e.Name(), err)
		}
		if _, err := s.openTenant(e.Name(), cfg); err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", e.Name(), err)
		}
	}
	return s, nil
}

// CreateTenant creates (or, when its directory already holds durable
// state, resumes) a tenant. Creating is idempotent for an identical
// config; a conflicting config for a live tenant is ErrConfigMismatch.
func (s *Server) CreateTenant(name string, cfg TenantConfig) (*TenantStatus, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, ErrBadTenantName
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.RLock()
	existing := s.tenants[name]
	s.mu.RUnlock()
	if existing != nil {
		want := cfg.withDefaults(s.opts.Defaults)
		have := existing.cfg
		if want.Dim != 0 && want.Dim != have.Dim {
			return nil, fmt.Errorf("%w: dim %d, tenant has %d", ErrConfigMismatch, want.Dim, have.Dim)
		}
		st := existing.status()
		return &st, ErrTenantExists
	}
	return s.openTenant(name, cfg)
}

func (s *Server) openTenant(name string, cfg TenantConfig) (*TenantStatus, error) {
	cfg = cfg.withDefaults(s.opts.Defaults)
	if cfg.Dim <= 0 {
		return nil, errors.New("server: tenant config needs dim > 0")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = deriveSeed(s.opts.Seed, name)
	}
	t, err := newTenant(name, filepath.Join(s.opts.Root, name), cfg, seed, s.opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.tenants[name] != nil || s.draining.Load() {
		s.mu.Unlock()
		t.abandon()
		if s.draining.Load() {
			return nil, ErrDraining
		}
		return nil, ErrTenantExists
	}
	s.tenants[name] = t
	s.mu.Unlock()
	t.start()
	st := t.status()
	s.logger.Info("tenant open",
		"tenant", name, "resumed", st.Resumed,
		"applied", st.Applied, "points", st.Points,
		"pipeline_depth", st.Pipeline)
	return &st, nil
}

// Tenant returns the named tenant.
func (s *Server) Tenant(name string) (*tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tenants[name]
	if t == nil {
		return nil, ErrUnknownTenant
	}
	return t, nil
}

// TenantStatuses lists every tenant's status, name-sorted.
func (s *Server) TenantStatuses() []TenantStatus {
	s.mu.RLock()
	out := make([]TenantStatus, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t.status())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Draining reports whether admissions have been stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: admissions stop (new ingests and
// tenant creations are refused), every tenant's queue is closed and its
// worker drains the in-flight batches, pipelines flush, each healthy
// tenant writes a final checkpoint, and logs close. Read endpoints keep
// serving from the last published snapshots throughout and after. Drain
// is idempotent; it returns the first per-tenant finalization error.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.drained {
		return nil
	}
	s.drained = true
	s.draining.Store(true)
	if _, ok := ctx.Deadline(); !ok {
		d := s.opts.DrainTimeout
		if d <= 0 {
			d = 30 * time.Second
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	s.logger.Info("drain start", "tenants", len(ts))
	for _, t := range ts {
		t.closeQueue()
	}
	var first error
	for _, t := range ts {
		if err := t.awaitDrained(ctx); err != nil && first == nil {
			first = fmt.Errorf("tenant %s: %w", t.name, err)
		}
	}
	if first != nil {
		s.logger.Warn("drain done", "error", first.Error())
	} else {
		s.logger.Info("drain done")
	}
	return first
}
