package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/stats"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/vecmath"
	"incbubbles/internal/wal"
)

// oracleCoreOpts rebuilds the core options the server derives for a
// tenant, for out-of-band wal.Resume verification.
func oracleCoreOpts(bubbles int, seed int64) core.Options {
	return core.Options{NumBubbles: bubbles, UseTriangleInequality: true, Seed: seed}
}

// mkBootstrap generates a deterministic initial point set around two
// well-separated centres.
func mkBootstrap(dim, n int, seed int64) [][]float64 {
	rng := stats.NewRNG(seed)
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, dim)
		centre := float64(8 * (i % 2))
		for d := range p {
			p[d] = centre + rng.Float64()
		}
		out[i] = p
	}
	return out
}

// mkBatches generates deterministic template batches: mostly inserts
// around two well-separated centres, with a few deletes of previously
// inserted IDs mixed in from the second batch on. Insert IDs are
// pre-stamped from idBase by the same sequential rule the server's
// worker uses (bootstrap points take 0..idBase-1), so the templates
// predict exactly the IDs the server will assign when the batches are
// ingested in order.
func mkBatches(dim, nBatches, perBatch int, seed int64, idBase uint64) []dataset.Batch {
	rng := stats.NewRNG(seed)
	next := idBase
	var live []uint64
	out := make([]dataset.Batch, nBatches)
	for b := range out {
		var batch dataset.Batch
		for i := 0; i < perBatch; i++ {
			if b > 0 && len(live) > 8 && i%5 == 4 {
				k := rng.Intn(len(live))
				batch = append(batch, dataset.Update{Op: dataset.OpDelete, ID: dataset.PointID(live[k])})
				live = append(live[:k], live[k+1:]...)
				continue
			}
			p := make(vecmath.Point, dim)
			centre := float64(8 * (i % 2))
			for d := range p {
				p[d] = centre + rng.Float64()
			}
			batch = append(batch, dataset.Update{Op: dataset.OpInsert, ID: dataset.PointID(next), P: p, Label: i % 2})
			live = append(live, next)
			next++
		}
		out[b] = batch
	}
	return out
}

// mkBatchesFrom regenerates the same deterministic stream as mkBatches
// and returns count batches starting at index from — the re-driven
// suffix of a longer workload.
func mkBatchesFrom(dim, from, count, perBatch int, seed int64, idBase uint64) []dataset.Batch {
	all := mkBatches(dim, from+count, perBatch, seed, idBase)
	return all[from : from+count]
}

// mkInsertBatches generates insert-only batches, for tests where some
// batches deliberately never apply (deletes would then dangle).
func mkInsertBatches(dim, nBatches, perBatch int, seed int64) []dataset.Batch {
	rng := stats.NewRNG(seed)
	out := make([]dataset.Batch, nBatches)
	for b := range out {
		batch := make(dataset.Batch, perBatch)
		for i := range batch {
			p := make(vecmath.Point, dim)
			centre := float64(8 * (i % 2))
			for d := range p {
				p[d] = centre + rng.Float64()
			}
			batch[i] = dataset.Update{Op: dataset.OpInsert, P: p, Label: i % 2}
		}
		out[b] = batch
	}
	return out
}

// netPoints folds a batch stream over a starting population.
func netPoints(start int, batches []dataset.Batch) int {
	for _, b := range batches {
		ins, del := b.Counts()
		start += ins - del
	}
	return start
}

// wireBody converts a template batch to the HTTP ingest body. Insert IDs
// are deliberately dropped: the server assigns them, and the templates
// predict the assignment.
func wireBody(t *testing.T, batch dataset.Batch) *bytes.Reader {
	t.Helper()
	var body ingestBody
	for _, u := range batch {
		switch u.Op {
		case dataset.OpInsert:
			body.Updates = append(body.Updates, updateJSON{Op: "insert", P: u.P, Label: u.Label})
		case dataset.OpDelete:
			id := uint64(u.ID)
			body.Updates = append(body.Updates, updateJSON{Op: "delete", ID: &id})
		}
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return bytes.NewReader(b)
}

type testEnv struct {
	srv *Server
	ts  *httptest.Server
}

func newTestEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	if opts.Root == "" {
		opts.Root = t.TempDir()
	}
	if opts.Seed == 0 {
		opts.Seed = 9
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{srv: srv, ts: ts}
}

func (e *testEnv) do(t *testing.T, method, path string, body *bytes.Reader) (*http.Response, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		rd = body
	}
	req, err := http.NewRequestWithContext(context.Background(), method, e.ts.URL+path, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp, decoded
}

func (e *testEnv) createTenant(t *testing.T, name string, cfg TenantConfig) {
	t.Helper()
	b, _ := json.Marshal(cfg)
	resp, body := e.do(t, http.MethodPut, "/tenants/"+name, bytes.NewReader(b))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d body %v", name, resp.StatusCode, body)
	}
}

func (e *testEnv) ingest(t *testing.T, name string, batch dataset.Batch) (*http.Response, map[string]any) {
	t.Helper()
	return e.do(t, http.MethodPost, "/tenants/"+name+"/batches", wireBody(t, batch))
}

func walDirOf(root, tenant string) string {
	return fmt.Sprintf("%s/%s/%s", root, tenant, walSubdir)
}

// TestTenantLifecycleAndReads walks every endpoint on a healthy serial
// and pipelined tenant: create (with bootstrap), ingest, status, the
// approx family, the reachability plot, idempotent re-create, config
// mismatch, and bootstrap validation.
func TestTenantLifecycleAndReads(t *testing.T) {
	e := newTestEnv(t, Options{})
	const bootN = 12
	for _, tc := range []struct {
		name  string
		depth int
	}{{"serial", 0}, {"piped", 2}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			name := "life-" + tc.name
			e.createTenant(t, name, TenantConfig{
				Dim: 2, Bubbles: 8, Seed: 3, PipelineDepth: tc.depth,
				CheckpointEvery: 2, Bootstrap: mkBootstrap(2, bootN, 31),
			})
			batches := mkBatches(2, 3, 30, 11, bootN)
			points := netPoints(bootN, batches)
			for i, b := range batches {
				resp, body := e.ingest(t, name, b)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("ingest %d: status %d body %v", i, resp.StatusCode, body)
				}
				if got := int(body["ordinal"].(float64)); got != i {
					t.Fatalf("ingest %d: ordinal %d", i, got)
				}
				// The server-assigned IDs must match the template's
				// prediction — deletes in later batches rely on it.
				wantFirst := uint64(0)
				for _, u := range b {
					if u.Op == dataset.OpInsert {
						wantFirst = uint64(u.ID)
						break
					}
				}
				if got := uint64(body["first_id"].(float64)); got != wantFirst {
					t.Fatalf("ingest %d: first_id %d, want %d", i, got, wantFirst)
				}
			}
			resp, st := e.do(t, http.MethodGet, "/tenants/"+name+"/status", nil)
			if resp.StatusCode != http.StatusOK || int(st["applied"].(float64)) != len(batches) {
				t.Fatalf("status: %d %v", resp.StatusCode, st)
			}
			if int(st["points"].(float64)) != points {
				t.Fatalf("status points = %v, want %d", st["points"], points)
			}
			resp, cnt := e.do(t, http.MethodGet, "/tenants/"+name+"/approx/count", nil)
			if resp.StatusCode != http.StatusOK || int(cnt["count"].(float64)) != points {
				t.Fatalf("approx count: %d %v (want %d points)", resp.StatusCode, cnt, points)
			}
			if resp, _ := e.do(t, http.MethodGet, "/tenants/"+name+"/approx/mean", nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("approx mean: %d", resp.StatusCode)
			}
			if resp, _ := e.do(t, http.MethodGet, "/tenants/"+name+"/approx/variance", nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("approx variance: %d", resp.StatusCode)
			}
			rc, _ := json.Marshal(rangeCountBody{Lo: []float64{-1, -1}, Hi: []float64{20, 20}, Samples: 64, Seed: 5})
			resp, est := e.do(t, http.MethodPost, "/tenants/"+name+"/approx/rangecount", bytes.NewReader(rc))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("rangecount: %d %v", resp.StatusCode, est)
			}
			if got := est["estimate"].(float64); got < float64(points)*0.8 || got > float64(points)*1.2 {
				t.Fatalf("rangecount over a box containing everything = %v, want ≈%d", got, points)
			}
			resp, _ = e.do(t, http.MethodGet, "/tenants/"+name+"/approx/histogram?axis=0&bins=8&lo=-1&hi=20&samples=64", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("histogram: %d", resp.StatusCode)
			}
			resp, plot := e.do(t, http.MethodGet, "/tenants/"+name+"/plot?minpts=5", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("plot: %d %v", resp.StatusCode, plot)
			}
			if got := int(plot["total_weight"].(float64)); got != points {
				t.Fatalf("plot total weight = %d, want %d", got, points)
			}

			// A dangling delete is a rejected request, not a fault: 400,
			// and the tenant keeps working.
			bogus := uint64(1 << 40)
			bad, _ := json.Marshal(ingestBody{Updates: []updateJSON{{Op: "delete", ID: &bogus}}})
			resp, body := e.do(t, http.MethodPost, "/tenants/"+name+"/batches", bytes.NewReader(bad))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("dangling delete: %d %v", resp.StatusCode, body)
			}
			resp, st = e.do(t, http.MethodGet, "/tenants/"+name+"/status", nil)
			if resp.StatusCode != http.StatusOK || st["read_only"] == true {
				t.Fatalf("status after bad batch: %d %v", resp.StatusCode, st)
			}

			// Idempotent re-create; mismatched dim refused.
			b, _ := json.Marshal(TenantConfig{Dim: 2, Bubbles: 8})
			if resp, _ := e.do(t, http.MethodPut, "/tenants/"+name, bytes.NewReader(b)); resp.StatusCode != http.StatusOK {
				t.Fatalf("re-create: %d", resp.StatusCode)
			}
			b, _ = json.Marshal(TenantConfig{Dim: 5, Bubbles: 8})
			if resp, _ := e.do(t, http.MethodPut, "/tenants/"+name, bytes.NewReader(b)); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("mismatched re-create: %d", resp.StatusCode)
			}
		})
	}
	// Creating without enough bootstrap points is a 400.
	b, _ := json.Marshal(TenantConfig{Dim: 2, Bubbles: 8, Bootstrap: mkBootstrap(2, 3, 1)})
	if resp, body := e.do(t, http.MethodPut, "/tenants/starved", bytes.NewReader(b)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("starved create: %d %v", resp.StatusCode, body)
	}
	resp, ls := e.do(t, http.MethodGet, "/tenants", nil)
	if resp.StatusCode != http.StatusOK || len(ls["tenants"].([]any)) != 2 {
		t.Fatalf("list: %d %v", resp.StatusCode, ls)
	}
	if resp, hz := e.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK || hz["draining"].(bool) {
		t.Fatalf("healthz: %d %v", resp.StatusCode, hz)
	}
}

// waitWorkerIdle spins until the tenant worker has pulled everything
// out of the queue (it is then parked at the test gate).
func waitWorkerIdle(t *testing.T, tn *tenant) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(tn.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never drained the queue")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueOverflow429 pins admission control: with the worker parked
// on the pacing gate and the queue at capacity, ingest returns 429 with
// Retry-After — and succeeds again once the queue drains.
func TestQueueOverflow429(t *testing.T) {
	e := newTestEnv(t, Options{})
	gate := make(chan struct{})
	// The gate is an unexported field, so the tenant must be created
	// in-process rather than over HTTP.
	cfg := TenantConfig{Dim: 2, Bubbles: 4, Seed: 3, QueueDepth: 2, Bootstrap: mkBootstrap(2, 8, 31), testGate: gate}
	if _, err := e.srv.CreateTenant("q", cfg); err != nil {
		t.Fatal(err)
	}
	tn, err := e.srv.Tenant("q")
	if err != nil {
		t.Fatal(err)
	}
	batches := mkBatches(2, 5, 10, 7, 8)

	// One request held at the gate, two filling the queue.
	var held []*ingestReq
	r0, err := tn.Admit(context.Background(), batches[0])
	if err != nil {
		t.Fatalf("admit 0: %v", err)
	}
	held = append(held, r0)
	waitWorkerIdle(t, tn)
	for i := 1; i <= 2; i++ {
		r, err := tn.Admit(context.Background(), batches[i])
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		held = append(held, r)
	}

	resp, body := e.ingest(t, "q", batches[3])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow ingest: status %d body %v", resp.StatusCode, body)
	}
	if body["reason"] != ReasonQueueFull {
		t.Fatalf("overflow reason = %v", body["reason"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After")
	}

	close(gate)
	for i, r := range held {
		if res := <-r.done; res.err != nil || res.ordinal != i {
			t.Fatalf("held request %d: ordinal %d err %v", i, res.ordinal, res.err)
		}
	}
	if resp, body := e.ingest(t, "q", batches[3]); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain ingest: %d %v", resp.StatusCode, body)
	}
}

// TestDeadlineCancellation pins the all-or-nothing contract under a
// mid-request client cancellation: the worker had already pulled the
// request (mid-flight, parked at the gate) when the context died, and
// the batch must not be applied at all — the tenant's applied count and
// summary are untouched, and the next batch takes the freed ordinal.
func TestDeadlineCancellation(t *testing.T) {
	e := newTestEnv(t, Options{})
	gate := make(chan struct{})
	cfg := TenantConfig{Dim: 2, Bubbles: 4, Seed: 3, Bootstrap: mkBootstrap(2, 8, 31), testGate: gate}
	if _, err := e.srv.CreateTenant("dl", cfg); err != nil {
		t.Fatal(err)
	}
	tn, err := e.srv.Tenant("dl")
	if err != nil {
		t.Fatal(err)
	}
	batches := mkInsertBatches(2, 3, 12, 13)

	// Batch 0 through cleanly.
	r0, err := tn.Admit(context.Background(), batches[0])
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{}
	if res := <-r0.done; res.err != nil {
		t.Fatalf("batch 0: %v", res.err)
	}

	// Batch 1 admitted, pulled by the worker, then cancelled mid-flight.
	cctx, cancel := context.WithCancel(context.Background())
	r1, err := tn.Admit(cctx, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	waitWorkerIdle(t, tn)
	cancel()
	gate <- struct{}{}
	res := <-r1.done
	if res.err == nil {
		t.Fatal("cancelled ingest reported success")
	}
	if tn.sink.Counter(telemetry.MetricServerCancelledBefore).Value() != 1 {
		t.Fatalf("cancellation not accounted: %v", res.err)
	}

	// Nothing side of all-or-nothing: applied count and summary as
	// after batch 0 only; batch 2 gets ordinal 1.
	resp, st := e.do(t, http.MethodGet, "/tenants/dl/status", nil)
	if resp.StatusCode != http.StatusOK || int(st["applied"].(float64)) != 1 {
		t.Fatalf("status after cancellation: %d %v", resp.StatusCode, st)
	}
	r2, err := tn.Admit(context.Background(), batches[2])
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{}
	if res := <-r2.done; res.err != nil || res.ordinal != 1 {
		t.Fatalf("batch 2: ordinal %d err %v", res.ordinal, res.err)
	}
}

// TestUndoBatchRestoresDatabase pins the service-level undo that backs
// all-or-nothing when ApplyBatchContext consumed nothing: replay then
// undo is the identity on the database.
func TestUndoBatchRestoresDatabase(t *testing.T) {
	db := dataset.MustNew(2)
	seedBatches := mkBatches(2, 2, 20, 5, 0)
	if _, err := seedBatches[0].Replay(db); err != nil {
		t.Fatal(err)
	}
	before := db.Snapshot()
	beforeNext := db.NextID()
	applied, err := seedBatches[1].Replay(db)
	if err != nil {
		t.Fatal(err)
	}
	undoBatch(db, applied)
	after := db.Snapshot()
	if len(after) != len(before) {
		t.Fatalf("undo left %d records, want %d", len(after), len(before))
	}
	byID := map[dataset.PointID]dataset.Record{}
	for _, r := range before {
		byID[r.ID] = r
	}
	for _, r := range after {
		want, ok := byID[r.ID]
		if !ok {
			t.Fatalf("undo left unknown id %d", r.ID)
		}
		if want.Label != r.Label {
			t.Fatalf("id %d label %d, want %d", r.ID, r.Label, want.Label)
		}
	}
	// NextID never rewinds below where it stood (IDs are not reused).
	if db.NextID() < beforeNext {
		t.Fatalf("undo rewound NextID to %d", db.NextID())
	}
}

// TestReadOnlyAfterPoisoningIsolation is the pinned degradation-ladder
// proof: poisoning one tenant's WAL (append ENOSPC) flips that tenant
// alone into read-only — ingest 503s with a machine-readable reason,
// reads keep serving the last-good snapshot — while the other tenant
// keeps ingesting, and no acked batch is lost on either.
func TestReadOnlyAfterPoisoningIsolation(t *testing.T) {
	reg := failpoint.New(7)
	root := t.TempDir()
	e := newTestEnv(t, Options{Root: root, Failpoints: reg})
	const bootN = 12
	e.createTenant(t, "victim", TenantConfig{
		Dim: 2, Bubbles: 6, Seed: 3, CheckpointEvery: 2, Bootstrap: mkBootstrap(2, bootN, 31),
	})
	e.createTenant(t, "healthy", TenantConfig{
		Dim: 2, Bubbles: 6, Seed: 4, PipelineDepth: 2, CheckpointEvery: 2, Bootstrap: mkBootstrap(2, bootN, 37),
	})
	vb := mkBatches(2, 4, 20, 17, bootN)
	hb := mkBatches(2, 6, 20, 19, bootN)

	for i := 0; i < 2; i++ {
		if resp, body := e.ingest(t, "victim", vb[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("victim ingest %d: %d %v", i, resp.StatusCode, body)
		}
		if resp, body := e.ingest(t, "healthy", hb[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy ingest %d: %d %v", i, resp.StatusCode, body)
		}
	}

	// Poison the victim's next append.
	reg.ArmError(wal.FailAppendNoSpace, 1, failpoint.ErrNoSpace)
	resp, body := e.ingest(t, "victim", vb[2])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poisoned ingest: %d %v", resp.StatusCode, body)
	}
	if body["reason"] != ReasonReadOnly {
		t.Fatalf("poisoned ingest reason = %v", body["reason"])
	}
	if cause, _ := body["cause"].(string); cause == "" {
		t.Fatalf("poisoned ingest carried no cause: %v", body)
	}

	// The victim is read-only: ingest refused at admission, reads serve
	// the last-good snapshot.
	resp, body = e.ingest(t, "victim", vb[2])
	if resp.StatusCode != http.StatusServiceUnavailable || body["reason"] != ReasonReadOnly {
		t.Fatalf("read-only ingest: %d %v", resp.StatusCode, body)
	}
	resp, st := e.do(t, http.MethodGet, "/tenants/victim/status", nil)
	if resp.StatusCode != http.StatusOK || st["read_only"] != true || st["reason"] != "wal_poisoned" {
		t.Fatalf("victim status: %d %v", resp.StatusCode, st)
	}
	if int(st["applied"].(float64)) != 2 {
		t.Fatalf("victim applied = %v, want 2", st["applied"])
	}
	wantCount := netPoints(bootN, vb[:2])
	resp, cnt := e.do(t, http.MethodGet, "/tenants/victim/approx/count", nil)
	if resp.StatusCode != http.StatusOK || int(cnt["count"].(float64)) != wantCount {
		t.Fatalf("victim approx count while poisoned: %d %v (want %d)", resp.StatusCode, cnt, wantCount)
	}
	if resp, _ := e.do(t, http.MethodGet, "/tenants/victim/plot?minpts=4", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("victim plot while poisoned: %d", resp.StatusCode)
	}

	// The healthy tenant is untouched: it keeps ingesting.
	for i := 2; i < len(hb); i++ {
		if resp, body := e.ingest(t, "healthy", hb[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy ingest %d after poisoning: %d %v", i, resp.StatusCode, body)
		}
	}

	// Drain and prove no acked batch was dropped on either tenant.
	if err := e.srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, tc := range []struct {
		name    string
		seed    int64
		applied int
	}{{"victim", 3, 2}, {"healthy", 4, len(hb)}} {
		st, err := wal.Resume(oracleCoreOpts(6, tc.seed), wal.Options{Dir: walDirOf(root, tc.name), CheckpointEvery: 2})
		if err != nil {
			t.Fatalf("%s resume: %v", tc.name, err)
		}
		if st.Batches != tc.applied {
			t.Fatalf("%s resumed %d batches, want %d", tc.name, st.Batches, tc.applied)
		}
		if err := st.Log.Close(); err != nil {
			t.Fatalf("%s close: %v", tc.name, err)
		}
	}
}

// TestDrainFinalCheckpointAndRestart pins graceful drain: admissions
// stop with machine-readable 503s, reads keep serving, every healthy
// tenant's final checkpoint covers its whole history (a resume replays
// zero WAL records), and a fresh server over the same root resumes all
// tenants at their drained state.
func TestDrainFinalCheckpointAndRestart(t *testing.T) {
	root := t.TempDir()
	e := newTestEnv(t, Options{Root: root})
	const bootN = 12
	e.createTenant(t, "a", TenantConfig{
		Dim: 2, Bubbles: 6, Seed: 3, CheckpointEvery: 3, Bootstrap: mkBootstrap(2, bootN, 31),
	})
	e.createTenant(t, "b", TenantConfig{
		Dim: 2, Bubbles: 6, Seed: 4, PipelineDepth: 2, CheckpointEvery: 3, Bootstrap: mkBootstrap(2, bootN, 37),
	})
	ab := mkBatches(2, 5, 20, 23, bootN)
	bb := mkBatches(2, 5, 20, 29, bootN)
	for i := range ab {
		if resp, body := e.ingest(t, "a", ab[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("a ingest %d: %d %v", i, resp.StatusCode, body)
		}
		if resp, body := e.ingest(t, "b", bb[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("b ingest %d: %d %v", i, resp.StatusCode, body)
		}
	}
	if err := e.srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp, hz := e.do(t, http.MethodGet, "/healthz", nil); !hz["draining"].(bool) {
		t.Fatalf("healthz after drain: %d %v", resp.StatusCode, hz)
	}
	if resp, body := e.ingest(t, "a", ab[0]); resp.StatusCode != http.StatusServiceUnavailable || body["reason"] != ReasonDraining {
		t.Fatalf("ingest after drain: %d %v", resp.StatusCode, body)
	}
	if resp, _ := e.do(t, http.MethodGet, "/tenants/a/approx/count", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("read after drain: %d", resp.StatusCode)
	}
	b, _ := json.Marshal(TenantConfig{Dim: 2, Bootstrap: mkBootstrap(2, 16, 41)})
	if resp, _ := e.do(t, http.MethodPut, "/tenants/late", bytes.NewReader(b)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create after drain: %d", resp.StatusCode)
	}

	// The final checkpoints cover everything: zero replay on resume.
	for name, seed := range map[string]int64{"a": 3, "b": 4} {
		st, err := wal.Resume(oracleCoreOpts(6, seed), wal.Options{Dir: walDirOf(root, name), CheckpointEvery: 3})
		if err != nil {
			t.Fatalf("%s resume: %v", name, err)
		}
		if st.Batches != 5 || st.Replayed != 0 {
			t.Fatalf("%s resumed at %d with %d replayed, want 5 and 0", name, st.Batches, st.Replayed)
		}
		if err := st.Log.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}

	// Restart: a fresh server over the same root resumes both tenants.
	e2 := newTestEnv(t, Options{Root: root})
	resp, st := e2.do(t, http.MethodGet, "/tenants/a/status", nil)
	if resp.StatusCode != http.StatusOK || int(st["applied"].(float64)) != 5 || st["resumed"] != true {
		t.Fatalf("restarted a status: %d %v", resp.StatusCode, st)
	}
	next := mkBatchesFrom(2, 5, 1, 20, 29, bootN)
	if resp, body := e2.ingest(t, "b", next[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after restart: %d %v", resp.StatusCode, body)
	}
	if err := e2.srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
