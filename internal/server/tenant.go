package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"incbubbles/internal/bubble"
	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/pipeline"
	"incbubbles/internal/retry"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/trace"
	"incbubbles/internal/wal"
)

// configFile and walSubdir lay out a tenant directory:
// <root>/<name>/tenant.json + <root>/<name>/wal/.
const (
	configFile = "tenant.json"
	walSubdir  = "wal"
)

// ingestReq is one admitted batch travelling from an HTTP handler to
// the tenant worker. done is buffered so the worker's reply never
// blocks on a handler that gave up waiting.
type ingestReq struct {
	ctx   context.Context
	batch dataset.Batch
	done  chan ingestResult

	// admitted is stamped by Admit; the worker measures the queue wait
	// against it at dequeue and carries it into the reply so the HTTP
	// layer can log it and stamp it on the request's trace span.
	admitted time.Time
	wait     time.Duration
}

type ingestResult struct {
	ordinal   int
	stats     core.BatchStats
	firstID   *uint64 // first server-assigned insert ID, nil if no inserts
	warning   string  // non-fatal trailing error (retryable checkpoint)
	err       error
	queueWait time.Duration
}

func (r *ingestReq) reply(res ingestResult) {
	res.queueWait = r.wait
	r.done <- res
}

// degraded is the machine-readable read-only marker of the degradation
// ladder's bottom rung.
type degraded struct {
	Reason string // stable reason code, e.g. "wal_poisoned"
	Cause  string // human-readable underlying error
}

// readState is the snapshot read queries serve from: a fully
// independent bubble.Set (Save→Load round-trip, private counter and
// RNG) plus the scalar state of the moment it was taken. Workers
// publish a fresh one after every applied batch; readers never touch
// the live summarizer, so a poisoned or busy tenant keeps serving its
// last-good summary.
type readState struct {
	set     *bubble.Set
	applied int
	points  int
	dim     int
}

// TenantStatus is the externally visible state of one tenant.
type TenantStatus struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Applied  int    `json:"applied"`
	Points   int    `json:"points"`
	Bubbles  int    `json:"bubbles"`
	Dim      int    `json:"dim"`
	Resumed  bool   `json:"resumed"`
	ReadOnly bool   `json:"read_only"`
	Reason   string `json:"reason,omitempty"`
	Cause    string `json:"cause,omitempty"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	Pipeline int    `json:"pipeline_depth"`
	// LastCheckpointAgeSeconds is the age of the tenant's newest durable
	// checkpoint, -1 before the first one completes in this process.
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"`
}

// tenantMetrics holds the serving layer's per-tenant metric handles,
// resolved once at construction so every family is present in the
// registry (and therefore in a /metrics scrape) from the tenant's first
// breath, not only after its first observation.
type tenantMetrics struct {
	queueDepth   *telemetry.Gauge
	queueWait    *telemetry.Histogram
	applySeconds *telemetry.Histogram
	httpRequests *telemetry.Counter
	httpSeconds  *telemetry.Histogram
	http429      *telemetry.Counter
	http503      *telemetry.Counter
}

func newTenantMetrics(sink *telemetry.Sink) tenantMetrics {
	return tenantMetrics{
		queueDepth:   sink.Gauge(telemetry.MetricServerQueueDepth),
		queueWait:    sink.Histogram(telemetry.MetricServerQueueWaitSeconds, telemetry.SecondsBounds()),
		applySeconds: sink.Histogram(telemetry.MetricServerApplySeconds, telemetry.SecondsBounds()),
		httpRequests: sink.Counter(telemetry.MetricServerHTTPRequests),
		httpSeconds:  sink.Histogram(telemetry.MetricServerHTTPSeconds, telemetry.SecondsBounds()),
		http429:      sink.Counter(telemetry.MetricServerHTTP429),
		http503:      sink.Counter(telemetry.MetricServerHTTP503),
	}
}

type tenant struct {
	name    string
	dir     string
	cfg     TenantConfig
	seed    int64
	resumed bool

	sink    *telemetry.Sink
	tracer  *trace.Tracer
	logger  *slog.Logger
	metrics tenantMetrics

	// Worker-owned (only the worker goroutine touches these after
	// start(); readers go through read).
	db    *dataset.DB
	sum   *core.Summarizer
	log   *wal.Log
	sched *pipeline.Scheduler // nil in serial mode

	// nextID and live shadow the database's ID allocator and live-record
	// set on the worker side. The worker stamps server-assigned insert
	// IDs and validates deletes against them before a batch ever reaches
	// Replay — in pipelined mode the scheduler replays batches itself
	// while the worker is already preparing the next one, so a malformed
	// batch caught at replay time would be a fatal pipeline fault; caught
	// here it is just a rejected request.
	nextID dataset.PointID
	live   map[dataset.PointID]struct{}

	// admitMu guards the check-then-send on queue against closeQueue:
	// a send may otherwise race the close and panic.
	admitMu     sync.RWMutex
	queueClosed bool
	queue       chan *ingestReq

	read     atomic.Pointer[readState]
	degrade  atomic.Pointer[degraded]
	workerWG sync.WaitGroup
	finalErr error // set by the worker's finalization, read after drain

	// gate, when non-nil (tests only), is received from once per
	// admitted request before the worker processes it, making
	// queue-overflow and cancellation timing deterministic.
	gate chan struct{}
}

// await blocks on the test pacing gate, if installed.
func (t *tenant) await() {
	if t.gate != nil {
		//lint:allow ctxflow test-only pacing seam, never set in production
		<-t.gate
	}
}

// dequeued samples the observability series the worker owns, right as it
// picks a request off the queue: the request's admission wait and the
// queue depth left behind it. Worker-side sampling keeps the hot HTTP
// path free of histogram work and needs no extra synchronization — the
// single worker is the only writer.
func (t *tenant) dequeued(req *ingestReq) {
	req.wait = time.Since(req.admitted)
	t.metrics.queueWait.Observe(req.wait.Seconds())
	t.metrics.queueDepth.Set(float64(len(t.queue)))
}

// newTenant opens (or resumes) the tenant's durable state. The worker
// is not started yet — start() does, after the server registers it.
// opts carries the server-wide observability wiring (logger, tracing,
// failpoints); the tenant-specific knobs come from cfg.
func newTenant(name, dir string, cfg TenantConfig, seed int64, opts Options) (*tenant, error) {
	fp := opts.Failpoints
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	onDisk, err := loadTenantConfig(dir)
	switch {
	case err == nil:
		if onDisk.Dim != cfg.Dim {
			return nil, fmt.Errorf("%w: dim %d, durable state has %d", ErrConfigMismatch, cfg.Dim, onDisk.Dim)
		}
		if onDisk.Bubbles != cfg.Bubbles {
			return nil, fmt.Errorf("%w: bubbles %d, durable state has %d", ErrConfigMismatch, cfg.Bubbles, onDisk.Bubbles)
		}
	case errors.Is(err, os.ErrNotExist):
		persist := cfg
		persist.Bootstrap = nil // checkpointed, not config
		if err := saveTenantConfig(dir, persist); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	tracer := opts.Tracer
	if tracer == nil && opts.TraceCapacity >= 0 {
		tracer = trace.New(trace.Options{Capacity: opts.TraceCapacity})
	}
	logger := opts.Logger
	if logger == nil {
		logger = discardLogger()
	}
	t := &tenant{
		name:   name,
		dir:    dir,
		cfg:    cfg,
		seed:   seed,
		sink:   telemetry.NewSink(),
		tracer: tracer,
		logger: logger.With("tenant", name),
		queue:  make(chan *ingestReq, cfg.QueueDepth),
		gate:   cfg.testGate,
	}
	t.metrics = newTenantMetrics(t.sink)
	coreOpts := core.Options{
		NumBubbles:            cfg.Bubbles,
		UseTriangleInequality: true,
		Seed:                  seed,
		Telemetry:             t.sink,
		Tracer:                t.tracer,
		Failpoints:            fp,
	}
	if cfg.PipelineDepth >= 1 {
		coreOpts.Pipeline = &core.PipelineOptions{Depth: cfg.PipelineDepth}
	}
	walOpts := wal.Options{
		Dir:             filepath.Join(dir, walSubdir),
		CheckpointEvery: cfg.CheckpointEvery,
		KeepCheckpoints: cfg.KeepCheckpoints,
		Telemetry:       t.sink,
		Tracer:          t.tracer,
		Failpoints:      fp,
	}
	if cfg.RetryAttempts > 1 {
		walOpts.CheckpointRetry = cfg.retryPolicy(seed)
	}
	if cfg.PipelineDepth >= 1 {
		walOpts.GroupCommit = cfg.GroupCommit
		if walOpts.GroupCommit <= 0 {
			walOpts.GroupCommit = 4
		}
	}

	if wal.HasState(walOpts.Dir) {
		st, err := wal.Resume(coreOpts, walOpts)
		if err != nil {
			return nil, err
		}
		t.db, t.sum, t.log, t.resumed = st.DB, st.Summarizer, st.Log, true
	} else {
		if len(cfg.Bootstrap) < cfg.Bubbles {
			return nil, fmt.Errorf("%w: %d points for %d bubbles", ErrBadBootstrap, len(cfg.Bootstrap), cfg.Bubbles)
		}
		t.db = dataset.MustNew(cfg.Dim)
		for i, p := range cfg.Bootstrap {
			if _, err := t.db.Insert(p, 0); err != nil {
				return nil, fmt.Errorf("%w: point %d: %v", ErrBadBootstrap, i, err)
			}
		}
		s, l, err := wal.New(t.db, coreOpts, walOpts)
		if err != nil {
			return nil, err
		}
		t.sum, t.log = s, l
	}
	t.nextID = t.db.NextID()
	t.live = make(map[dataset.PointID]struct{}, t.db.Len())
	for _, rec := range t.db.Snapshot() {
		t.live[rec.ID] = struct{}{}
	}
	if cfg.PipelineDepth >= 1 {
		sched, err := pipeline.New(t.sum, t.log, pipeline.Config{Replay: true})
		if err != nil {
			_ = t.log.Close()
			return nil, err
		}
		t.sched = sched
	}
	t.publish()
	return t, nil
}

func loadTenantConfig(dir string) (TenantConfig, error) {
	var cfg TenantConfig
	b, err := os.ReadFile(filepath.Join(dir, configFile))
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(b, &cfg); err != nil {
		return cfg, fmt.Errorf("server: %s: %w", configFile, err)
	}
	return cfg, nil
}

func saveTenantConfig(dir string, cfg TenantConfig) error {
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, configFile), append(b, '\n'), 0o644)
}

// start launches the worker.
func (t *tenant) start() {
	t.workerWG.Add(1)
	go t.run()
}

// abandon releases a tenant that lost the registration race: its
// worker never started, so only the durable handles need closing.
func (t *tenant) abandon() {
	if t.sched != nil {
		_ = t.sched.Close()
	}
	_ = t.log.Close()
}

// Admit enqueues one batch for ingestion without ever blocking: a full
// queue is ErrQueueFull (the admission-control 429), a degraded tenant
// is ErrReadOnly. On success the caller waits on req.done.
func (t *tenant) Admit(ctx context.Context, batch dataset.Batch) (*ingestReq, error) {
	if d := t.degrade.Load(); d != nil {
		return nil, fmt.Errorf("%w: %s", ErrReadOnly, d.Reason)
	}
	req := &ingestReq{ctx: ctx, batch: batch, done: make(chan ingestResult, 1), admitted: time.Now()}
	t.admitMu.RLock()
	defer t.admitMu.RUnlock()
	if t.queueClosed {
		return nil, ErrDraining
	}
	select {
	case t.queue <- req:
		return req, nil
	default:
		t.sink.Counter(telemetry.MetricServerQueueRejected).Inc()
		return nil, ErrQueueFull
	}
}

// closeQueue stops admissions for this tenant (Drain).
func (t *tenant) closeQueue() {
	t.admitMu.Lock()
	defer t.admitMu.Unlock()
	if !t.queueClosed {
		t.queueClosed = true
		close(t.queue)
	}
}

// awaitDrained blocks until the worker has drained and finalized.
func (t *tenant) awaitDrained(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		//lint:allow ctxflow the join runs in a helper goroutine; the select below races it against ctx.Done
		t.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return t.finalErr
	case <-ctx.Done():
		return fmt.Errorf("server: tenant %s drain: %w", t.name, ctx.Err())
	}
}

func (t *tenant) status() TenantStatus {
	rs := t.read.Load()
	st := TenantStatus{
		Name:                     t.name,
		Seed:                     t.seed,
		Resumed:                  t.resumed,
		QueueLen:                 len(t.queue),
		QueueCap:                 cap(t.queue),
		Pipeline:                 t.cfg.PipelineDepth,
		LastCheckpointAgeSeconds: t.checkpointAge(),
	}
	if rs != nil {
		st.Applied = rs.applied
		st.Points = rs.points
		st.Dim = rs.dim
		st.Bubbles = rs.set.Len()
	}
	if d := t.degrade.Load(); d != nil {
		st.ReadOnly = true
		st.Reason = d.Reason
		st.Cause = d.Cause
	}
	return st
}

// checkpointAge reports seconds since the tenant's last durable
// checkpoint, -1 before the first one completes in this process.
func (t *tenant) checkpointAge() float64 {
	n := t.log.LastCheckpointNanos()
	if n == 0 {
		return -1
	}
	return time.Since(time.Unix(0, n)).Seconds()
}

// snapshot returns the current read state (never nil once the tenant
// is open — newTenant publishes the initial one).
func (t *tenant) snapshot() *readState { return t.read.Load() }

// publish replaces the read snapshot with an independent clone of the
// live summary. On a snapshot error the previous snapshot is kept —
// reads degrade to slightly stale rather than fail.
func (t *tenant) publish() {
	var buf bytes.Buffer
	if err := t.sum.Set().Save(&buf); err != nil {
		t.sink.Counter(telemetry.MetricServerSnapshotErrors).Inc()
		return
	}
	set, err := bubble.Load(&buf, bubble.Options{})
	if err != nil {
		t.sink.Counter(telemetry.MetricServerSnapshotErrors).Inc()
		return
	}
	t.read.Store(&readState{
		set:     set,
		applied: t.sum.Batches(),
		points:  t.db.Len(),
		dim:     t.db.Dim(),
	})
}

// run is the worker: the single goroutine that owns the tenant's
// database, summarizer, scheduler and log. It drains the queue,
// degrades the tenant on a poisoned WAL, and finalizes (flush, final
// checkpoint, close) when the queue closes.
func (t *tenant) run() {
	defer t.workerWG.Done()
	if t.sched != nil {
		t.runPipelined()
	} else {
		t.runSerial()
	}
	t.finalErr = t.finalize()
}

// rejectRemaining consumes the queue until it closes, failing every
// request with the degradation reason — admitted-but-unserved requests
// must not hang after the tenant flips read-only.
func (t *tenant) rejectRemaining() {
	for req := range t.queue {
		d := t.degrade.Load()
		req.reply(ingestResult{err: fmt.Errorf("%w: %s", ErrReadOnly, d.Reason)})
	}
}

// setDegraded flips the tenant read-only. Reads keep serving from the
// last published snapshot; Admit and the worker refuse ingestion with
// the machine-readable reason.
func (t *tenant) setDegraded(reason string, cause error) {
	if t.degrade.CompareAndSwap(nil, &degraded{Reason: reason, Cause: cause.Error()}) {
		t.sink.Counter(telemetry.MetricServerDegraded).Inc()
		t.logger.Warn("tenant degraded", "reason", reason, "cause", cause.Error())
	}
}

// prepare stamps server-assigned IDs onto the batch's inserts and
// validates its deletes against the worker's shadow live set, committing
// the shadow state only when the whole batch is valid. Submission order
// is apply order, so the shadow set is exactly the database state the
// batch will see at replay time even while earlier batches are still in
// flight through the pipeline.
func (t *tenant) prepare(batch dataset.Batch) error {
	next := t.nextID
	ins := make(map[dataset.PointID]struct{})
	del := make(map[dataset.PointID]struct{})
	for i := range batch {
		u := &batch[i]
		switch u.Op {
		case dataset.OpInsert:
			u.ID = next
			next++
			ins[u.ID] = struct{}{}
		case dataset.OpDelete:
			if _, dup := del[u.ID]; dup {
				return fmt.Errorf("%w: update %d deletes id %d twice", ErrBadBatch, i, u.ID)
			}
			_, inLive := t.live[u.ID]
			if _, inBatch := ins[u.ID]; inBatch {
				delete(ins, u.ID)
			} else if inLive {
				del[u.ID] = struct{}{}
			} else {
				return fmt.Errorf("%w: update %d deletes unknown id %d", ErrBadBatch, i, u.ID)
			}
		}
	}
	t.nextID = next
	for id := range del {
		delete(t.live, id)
	}
	for id := range ins {
		t.live[id] = struct{}{}
	}
	return nil
}

// unprepare reverts prepare after a batch provably applied nothing. Only
// valid while no later batch has been prepared on top of it — the serial
// undo path and a pipelined submit that was refused outright.
func (t *tenant) unprepare(batch dataset.Batch, prevNext dataset.PointID) {
	for i := len(batch) - 1; i >= 0; i-- {
		switch u := batch[i]; u.Op {
		case dataset.OpInsert:
			delete(t.live, u.ID)
		case dataset.OpDelete:
			t.live[u.ID] = struct{}{}
		}
	}
	t.nextID = prevNext
}

// firstInsertID reports the first stamped insert ID of a prepared batch;
// the rest follow consecutively over the batch's inserts.
func firstInsertID(batch dataset.Batch) *uint64 {
	for _, u := range batch {
		if u.Op == dataset.OpInsert {
			id := uint64(u.ID)
			return &id
		}
	}
	return nil
}

// --- serial ingestion -------------------------------------------------

// runSerial applies each admitted batch on the spot, propagating the
// request's deadline through ApplyBatchContext. The core guarantees
// all-or-nothing under cancellation (mutation only starts after the
// last ctx check), and the worker mirrors that at the service level:
// the template batch is replayed into the database first and undone
// again if the summarizer provably consumed nothing.
func (t *tenant) runSerial() {
	for req := range t.queue {
		t.dequeued(req)
		t.await()
		if err := req.ctx.Err(); err != nil {
			t.sink.Counter(telemetry.MetricServerCancelledBefore).Inc()
			req.reply(ingestResult{err: err})
			continue
		}
		ordinal := t.sum.Batches()
		prevNext := t.nextID
		if err := t.prepare(req.batch); err != nil {
			req.reply(ingestResult{err: err})
			continue
		}
		applyStart := time.Now()
		applied, err := req.batch.Replay(t.db)
		if err != nil {
			// Unreachable after prepare validated the batch; a failure here
			// means the database and shadow state disagree, so fail stop.
			t.setDegraded("replay_failed", err)
			req.reply(ingestResult{err: fmt.Errorf("%w: replay_failed", ErrReadOnly)})
			t.rejectRemaining()
			return
		}
		stats, err := t.sum.ApplyBatchContext(req.ctx, applied)
		if t.sum.Batches() == ordinal+1 {
			// Committed. A surviving non-fatal error can only be the
			// trailing retryable checkpoint, already re-attempted in place
			// by the WAL's own policy; surface it as a warning. A poisoned
			// log or a simulated crash in the trailing checkpoint still
			// acks the batch (it is durable) but then degrades the tenant:
			// a real crash would have died right here, post-commit.
			res := ingestResult{ordinal: ordinal, stats: stats, firstID: firstInsertID(applied)}
			if err != nil {
				res.warning = err.Error()
			}
			t.metrics.applySeconds.Observe(time.Since(applyStart).Seconds())
			t.sink.Counter(telemetry.MetricServerIngested).Inc()
			t.publish()
			req.reply(res)
			if perr := t.log.Poisoned(); perr != nil {
				t.setDegraded("wal_poisoned", perr)
				t.rejectRemaining()
				return
			}
			if errors.Is(err, failpoint.ErrCrash) {
				t.setDegraded("simulated_crash", err)
				t.rejectRemaining()
				return
			}
			continue
		}
		// Nothing consumed by the summarizer: undo the database replay so
		// the batch is all-or-nothing end to end.
		undoBatch(t.db, applied)
		t.unprepare(applied, prevNext)
		if perr := t.log.Poisoned(); perr != nil {
			t.setDegraded("wal_poisoned", perr)
			req.reply(ingestResult{err: fmt.Errorf("%w: wal_poisoned", ErrReadOnly)})
			t.rejectRemaining()
			return
		}
		if errors.Is(err, failpoint.ErrCrash) {
			// The failpoint convention is fail-stop: a simulated crash
			// means this tenant's process is dead. Degrade instead of
			// continuing against durable state of unknown tail.
			t.setDegraded("simulated_crash", err)
			req.reply(ingestResult{err: fmt.Errorf("%w: simulated_crash", ErrReadOnly)})
			t.rejectRemaining()
			return
		}
		req.reply(ingestResult{err: err})
	}
}

// undoBatch reverses an applied template batch on the database:
// inserts are deleted, deletes are re-inserted with their recorded
// coordinates. Walked in reverse so interleaved updates unwind in
// order.
func undoBatch(db *dataset.DB, applied dataset.Batch) {
	for i := len(applied) - 1; i >= 0; i-- {
		u := applied[i]
		switch u.Op {
		case dataset.OpInsert:
			_, _ = db.Delete(u.ID)
		case dataset.OpDelete:
			_ = db.InsertWithID(dataset.Record{ID: u.ID, P: u.P, Label: u.Label})
		}
	}
}

// --- pipelined ingestion ----------------------------------------------

type inflightTicket struct {
	req     *ingestReq
	tk      *pipeline.Ticket
	started time.Time // submit time; apply latency is observed at head ack
}

// runPipelined keeps a window of up to PipelineDepth batches in flight
// through the scheduler, overlapping batch N+1's speculation and group
// append with batch N's apply. A group-commit clean failure (the batch
// provably consumed nothing) is re-driven through the seeded backoff
// policy; a fatal or poisoning failure degrades the tenant.
func (t *tenant) runPipelined() {
	depth := t.cfg.PipelineDepth
	var inflight []inflightTicket
	open := true
	for open || len(inflight) > 0 {
		// Fill the window: block for work only when idle.
		for open && len(inflight) < depth {
			var req *ingestReq
			var ok bool
			if len(inflight) == 0 {
				req, ok = <-t.queue
			} else {
				select {
				case req, ok = <-t.queue:
				default:
					ok = true // nothing pending right now; go wait the head
				}
			}
			if !ok {
				open = false
				break
			}
			if req == nil {
				break
			}
			t.dequeued(req)
			t.await()
			if err := req.ctx.Err(); err != nil {
				t.sink.Counter(telemetry.MetricServerCancelledBefore).Inc()
				req.reply(ingestResult{err: err})
				continue
			}
			prevNext := t.nextID
			if err := t.prepare(req.batch); err != nil {
				req.reply(ingestResult{err: err})
				continue
			}
			submitted := time.Now()
			tk, err := t.sched.Submit(req.ctx, req.batch)
			if err != nil {
				if t.checkFatal(err) {
					req.reply(ingestResult{err: fmt.Errorf("%w: %s", ErrReadOnly, t.degrade.Load().Reason)})
					t.failInflight(inflight)
					t.rejectRemaining()
					return
				}
				// Admission-time cancellation: the batch never entered the
				// pipeline, and nothing was prepared on top of it yet.
				t.unprepare(req.batch, prevNext)
				req.reply(ingestResult{err: err})
				continue
			}
			inflight = append(inflight, inflightTicket{req: req, tk: tk, started: submitted})
		}
		if len(inflight) == 0 {
			continue
		}
		head := inflight[0]
		// The durability ack must be observed even if the client went
		// away: a submitted batch always runs to completion.
		//lint:allow ctxflow the wait is deliberately not cancellable — the ticket's outcome must be observed exactly once
		stats, err := head.tk.Wait(context.Background())
		if err == nil || head.tk.Applied() {
			res := ingestResult{ordinal: t.sum.Batches() - 1, stats: stats, firstID: firstInsertID(head.req.batch)}
			if err != nil {
				res.warning = err.Error()
			}
			t.metrics.applySeconds.Observe(time.Since(head.started).Seconds())
			t.sink.Counter(telemetry.MetricServerIngested).Inc()
			t.publish()
			head.req.reply(res)
			inflight = inflight[1:]
			// Applied-with-error can hide a fatal trailing fault (poisoned
			// log, crashed async checkpoint): the batch is durable and
			// acked, but the tenant must stop here like a real post-commit
			// crash would.
			if err != nil && t.checkFatal(err) {
				t.failInflight(inflight)
				t.rejectRemaining()
				return
			}
			continue
		}
		if t.checkFatal(err) {
			head.req.reply(ingestResult{err: fmt.Errorf("%w: %s", ErrReadOnly, t.degrade.Load().Reason)})
			t.failInflight(inflight[1:])
			t.rejectRemaining()
			return
		}
		// Clean failure: every ticket behind the head is stale (ErrStale)
		// and consumed nothing. Wait them out — the scheduler's stall
		// clears only once each outcome is observed — then re-drive the
		// head and the stale batches, in order, under the backoff policy.
		stale := inflight[1:]
		for i := range stale {
			//lint:allow ctxflow stale tickets must be observed to clear the scheduler stall
			_, _ = stale[i].tk.Wait(context.Background())
		}
		inflight = nil
		redo := append([]inflightTicket{head}, stale...)
		for _, p := range redo {
			if !t.redrive(p.req) {
				t.failInflight(nil)
				t.rejectRemaining()
				return
			}
		}
	}
}

// checkFatal inspects a failed submit/wait: a poisoned WAL or a sticky
// scheduler failure degrades the tenant and returns true.
func (t *tenant) checkFatal(err error) bool {
	if perr := t.log.Poisoned(); perr != nil {
		t.setDegraded("wal_poisoned", perr)
		return true
	}
	if serr := t.sched.Err(); serr != nil {
		t.setDegraded("pipeline_failed", serr)
		return true
	}
	if errors.Is(err, failpoint.ErrCrash) {
		t.setDegraded("pipeline_failed", err)
		return true
	}
	return false
}

// failInflight replies the degradation error to every ticket still in
// flight (their batches abort behind the fatal failure).
func (t *tenant) failInflight(inflight []inflightTicket) {
	for _, p := range inflight {
		//lint:allow ctxflow aborted tickets still need their outcome observed
		_, _ = p.tk.Wait(context.Background())
		d := t.degrade.Load()
		p.req.reply(ingestResult{err: fmt.Errorf("%w: %s", ErrReadOnly, d.Reason)})
	}
}

// redrive resubmits one cleanly-failed batch under the tenant's backoff
// policy. Only group-commit clean failures retry — a poisoned log, a
// sticky scheduler failure, or a simulated crash stop immediately. A
// batch being re-driven was already prepared (its IDs are committed in
// the shadow state and later batches may reference them), so the retry
// loop ignores the client's context and runs to commit or degradation —
// retries exhausting degrades the tenant rather than leaving its shadow
// state diverged from the summary. Returns false when the tenant
// degraded.
func (t *tenant) redrive(req *ingestReq) bool {
	p := t.cfg.retryPolicy(t.seed)
	p.Retryable = func(err error) bool {
		if errors.Is(err, failpoint.ErrCrash) || errors.Is(err, pipeline.ErrClosed) {
			return false
		}
		return t.log.Poisoned() == nil && t.sched.Err() == nil
	}
	p.OnAttempt = func(a retry.Attempt) {
		if !a.Last {
			t.sink.Counter(telemetry.MetricServerIngestRetries).Inc()
			t.sink.Emit(telemetry.Event{Kind: telemetry.KindRetry, Batch: -1, A: a.N, N: int(a.Delay)})
		}
	}
	//lint:allow ctxflow an admitted batch is re-driven to completion even if its client went away
	err := retry.Do(context.Background(), p, func(ctx context.Context) error {
		tk, serr := t.sched.Submit(ctx, req.batch)
		if serr != nil {
			return serr
		}
		//lint:allow ctxflow the durability ack must be observed even for an abandoned request
		stats, werr := tk.Wait(context.Background())
		if werr == nil || tk.Applied() {
			res := ingestResult{ordinal: t.sum.Batches() - 1, stats: stats, firstID: firstInsertID(req.batch)}
			if werr != nil {
				res.warning = werr.Error()
			}
			t.sink.Counter(telemetry.MetricServerIngested).Inc()
			t.publish()
			req.reply(res)
			return nil
		}
		return werr
	})
	if err == nil {
		return true
	}
	if !t.checkFatal(err) {
		t.setDegraded("retries_exhausted", err)
	}
	req.reply(ingestResult{err: fmt.Errorf("%w: %s", ErrReadOnly, t.degrade.Load().Reason)})
	return false
}

// finalize flushes and closes the tenant's durable state at drain: the
// pipeline drains, a healthy tenant writes a final checkpoint (so a
// restart resumes without replaying any WAL suffix), and the log
// closes. A degraded tenant is abandoned exactly as a crash would leave
// it — no close, no final sync: its on-disk tail is whatever the fault
// left, and recovery owns it from here.
func (t *tenant) finalize() error {
	if t.degrade.Load() != nil {
		if t.sched != nil {
			_ = t.sched.Close()
		}
		return nil
	}
	if t.sched != nil {
		if err := t.sched.Close(); err != nil && !errors.Is(err, wal.ErrCheckpointRetryable) {
			if t.log.Poisoned() == nil {
				_ = t.log.Close()
				return fmt.Errorf("server: pipeline close: %w", err)
			}
			return nil
		}
	}
	if t.log.Poisoned() != nil {
		return nil
	}
	if err := t.log.Checkpoint(t.sum); err != nil {
		_ = t.log.Close()
		return fmt.Errorf("server: final checkpoint: %w", err)
	}
	t.logger.Info("final checkpoint", "applied", t.sum.Batches())
	return t.log.Close()
}
