package stats

import (
	"errors"
	"math"
)

// ChebyshevK returns the multiplier k such that, by Chebyshev's inequality,
// at least fraction p of any distribution lies within k standard deviations
// of its mean: p ≤ 1 − 1/k² ⇒ k = 1/sqrt(1−p). The paper (§4.1) uses
// p = 0.9 (k ≈ 3.162) and reports p = 0.8 gives equivalent clustering
// quality.
func ChebyshevK(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("stats: Chebyshev probability must be in (0,1)")
	}
	return 1 / math.Sqrt(1-p), nil
}

// Interval is a closed interval [Lo, Hi] on the real line.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x ∈ [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// ChebyshevBounds returns the interval [μ − kσ, μ + kσ] that contains at
// least fraction p of the distribution with the given mean and standard
// deviation, per Chebyshev's inequality.
func ChebyshevBounds(mean, std, p float64) (Interval, error) {
	k, err := ChebyshevK(p)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: mean - k*std, Hi: mean + k*std}, nil
}

// ChebyshevBoundsFromSample computes Chebyshev bounds from a sample. It is
// the operation Definition 3 of the paper performs on the β values of all
// data bubbles.
func ChebyshevBoundsFromSample(xs []float64, p float64) (Interval, error) {
	mean, std, err := MeanStd(xs)
	if err != nil {
		return Interval{}, err
	}
	return ChebyshevBounds(mean, std, p)
}
