package stats

import (
	"math"
	"math/rand"

	"incbubbles/internal/vecmath"
)

// RNG wraps math/rand with the point-sampling operations the synthetic
// workload generators need. All experiment randomness flows through RNG so
// runs are reproducible from a single seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying *rand.Rand for operations not wrapped here.
func (g *RNG) Rand() *rand.Rand { return g.r }

// Reseed re-seeds the generator in place, as if freshly created with
// NewRNG(seed). Per-point parallel search loops reuse one RNG per worker
// and reseed it for every item instead of allocating a new source.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// SubSeed derives the k-th child seed of base with a SplitMix64 step. Every
// item of a parallel loop gets its own reproducible RNG stream from
// (base, item ordinal), so the stream an item sees is independent of the
// worker that runs it and of execution order — the property the parallel
// assignment pipeline's determinism rests on.
func SubSeed(base int64, k int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(k)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// GaussianPoint samples a point from an axis-aligned Gaussian centred at
// center with per-axis standard deviation std.
func (g *RNG) GaussianPoint(center vecmath.Point, std float64) vecmath.Point {
	p := make(vecmath.Point, len(center))
	for i := range p {
		p[i] = center[i] + std*g.r.NormFloat64()
	}
	return p
}

// GaussianPointStds samples a point from an axis-aligned Gaussian with a
// per-axis standard deviation vector.
func (g *RNG) GaussianPointStds(center vecmath.Point, stds []float64) vecmath.Point {
	p := make(vecmath.Point, len(center))
	for i := range p {
		p[i] = center[i] + stds[i]*g.r.NormFloat64()
	}
	return p
}

// UniformPoint samples a point uniformly from the axis-aligned box
// [lo,hi)^d.
func (g *RNG) UniformPoint(d int, lo, hi float64) vecmath.Point {
	p := make(vecmath.Point, d)
	for i := range p {
		p[i] = g.Uniform(lo, hi)
	}
	return p
}

// UniformPointBox samples uniformly from the box with the given per-axis
// bounds.
func (g *RNG) UniformPointBox(lo, hi vecmath.Point) vecmath.Point {
	p := make(vecmath.Point, len(lo))
	for i := range p {
		p[i] = g.Uniform(lo[i], hi[i])
	}
	return p
}

// OnSphere samples a point uniformly on the sphere of the given radius
// centred at center, via normalised Gaussian sampling.
func (g *RNG) OnSphere(center vecmath.Point, radius float64) vecmath.Point {
	for {
		p := make(vecmath.Point, len(center))
		var n2 float64
		for i := range p {
			p[i] = g.r.NormFloat64()
			n2 += p[i] * p[i]
		}
		if n2 == 0 {
			continue
		}
		s := radius / math.Sqrt(n2)
		for i := range p {
			p[i] = center[i] + p[i]*s
		}
		return p
	}
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0,n). It panics if k > n, matching the impossibility of the request.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		//lint:allow nopanic k>n is a programmer error with no sensible partial result; the API documents the panic
		panic("stats: sample larger than population")
	}
	// Floyd's algorithm: O(k) expected, no O(n) permutation for small k.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := g.r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	g.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
