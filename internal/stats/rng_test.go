package stats

import (
	"math"
	"testing"

	"incbubbles/internal/vecmath"
)

func TestRNGReproducible(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(7)
	var r Running
	for i := 0; i < 20000; i++ {
		r.Add(g.Normal(10, 2))
	}
	if math.Abs(r.Mean()-10) > 0.1 {
		t.Errorf("Normal mean=%v", r.Mean())
	}
	if math.Abs(r.StdDev()-2) > 0.1 {
		t.Errorf("Normal std=%v", r.StdDev())
	}
}

func TestGaussianPoint(t *testing.T) {
	g := NewRNG(3)
	c := vecmath.Point{100, -50, 3}
	var dims [3]Running
	for i := 0; i < 5000; i++ {
		p := g.GaussianPoint(c, 1.5)
		if p.Dim() != 3 {
			t.Fatalf("dim=%d", p.Dim())
		}
		for j, v := range p {
			dims[j].Add(v)
		}
	}
	for j := range dims {
		if math.Abs(dims[j].Mean()-c[j]) > 0.15 {
			t.Errorf("axis %d mean=%v want %v", j, dims[j].Mean(), c[j])
		}
		if math.Abs(dims[j].StdDev()-1.5) > 0.15 {
			t.Errorf("axis %d std=%v want 1.5", j, dims[j].StdDev())
		}
	}
}

func TestGaussianPointStds(t *testing.T) {
	g := NewRNG(4)
	c := vecmath.Point{0, 0}
	stds := []float64{0.5, 4}
	var a0, a1 Running
	for i := 0; i < 5000; i++ {
		p := g.GaussianPointStds(c, stds)
		a0.Add(p[0])
		a1.Add(p[1])
	}
	if math.Abs(a0.StdDev()-0.5) > 0.1 || math.Abs(a1.StdDev()-4) > 0.3 {
		t.Errorf("per-axis stds=(%v,%v)", a0.StdDev(), a1.StdDev())
	}
}

func TestUniformPointBoxes(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 500; i++ {
		p := g.UniformPoint(4, -1, 1)
		if p.Dim() != 4 {
			t.Fatalf("dim=%d", p.Dim())
		}
		for _, v := range p {
			if v < -1 || v >= 1 {
				t.Fatalf("out of box: %v", p)
			}
		}
	}
	lo := vecmath.Point{0, 10}
	hi := vecmath.Point{1, 20}
	for i := 0; i < 500; i++ {
		p := g.UniformPointBox(lo, hi)
		if p[0] < 0 || p[0] >= 1 || p[1] < 10 || p[1] >= 20 {
			t.Fatalf("out of box: %v", p)
		}
	}
}

func TestOnSphere(t *testing.T) {
	g := NewRNG(6)
	c := vecmath.Point{1, 2, 3}
	for i := 0; i < 200; i++ {
		p := g.OnSphere(c, 5)
		d := vecmath.Distance(c, p)
		if math.Abs(d-5) > 1e-9 {
			t.Fatalf("radius=%v", d)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(8)
	for trial := 0; trial < 100; trial++ {
		n, k := 50, 12
		idx := g.SampleWithoutReplacement(n, k)
		if len(idx) != k {
			t.Fatalf("len=%d", len(idx))
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= n {
				t.Fatalf("index out of range: %d", i)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
	// Full sample is a permutation.
	idx := g.SampleWithoutReplacement(5, 5)
	seen := map[int]bool{}
	for _, i := range idx {
		seen[i] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample not a permutation: %v", idx)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when k > n")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestPermAndShuffle(t *testing.T) {
	g := NewRNG(9)
	p := g.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm not a permutation: %v", p)
	}
	xs := []int{1, 2, 3, 4, 5}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
}
