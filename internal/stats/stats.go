// Package stats provides the descriptive statistics, Chebyshev bounds and
// random sampling used throughout the library: the β-quality classification
// of data bubbles (paper §4.1) rests on the mean and standard deviation of
// the β distribution and on Chebyshev's inequality, and the synthetic
// workloads are Gaussian mixtures drawn from seeded generators.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Running accumulates a univariate sample incrementally using Welford's
// algorithm, supporting both additions and removals so that the β
// distribution can be maintained as bubbles change. The zero value is an
// empty accumulator.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the sample.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Remove deletes one previous observation x from the sample. Removing a
// value that was never added yields undefined statistics, as with any
// decremental sufficient-statistics scheme.
func (r *Running) Remove(x float64) {
	if r.n <= 1 {
		*r = Running{}
		return
	}
	nf := float64(r.n)
	oldMean := (nf*r.mean - x) / (nf - 1)
	r.m2 -= (x - r.mean) * (x - oldMean)
	if r.m2 < 0 {
		r.m2 = 0 // guard against floating point cancellation
	}
	r.mean = oldMean
	r.n--
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for an empty sample).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the Bessel-corrected variance.
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// SampleStdDev returns the Bessel-corrected standard deviation.
func (r *Running) SampleStdDev() float64 { return math.Sqrt(r.SampleVariance()) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	mean, _ = Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs))), nil
}

// SampleStd returns the Bessel-corrected standard deviation of xs, or 0 for
// samples smaller than 2.
func SampleStd(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }
