package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	mean, std, err := MeanStd(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Mean()-mean) > 1e-12 {
		t.Errorf("Running mean=%v batch=%v", r.Mean(), mean)
	}
	if math.Abs(r.StdDev()-std) > 1e-12 {
		t.Errorf("Running std=%v batch=%v", r.StdDev(), std)
	}
	if r.N() != len(xs) {
		t.Errorf("N=%d", r.N())
	}
}

func TestRunningRemove(t *testing.T) {
	var r Running
	for _, x := range []float64{5, 7, 11, 13} {
		r.Add(x)
	}
	r.Remove(7)
	r.Remove(13)
	mean, std, _ := MeanStd([]float64{5, 11})
	if math.Abs(r.Mean()-mean) > 1e-9 {
		t.Errorf("mean after removal=%v want %v", r.Mean(), mean)
	}
	if math.Abs(r.StdDev()-std) > 1e-9 {
		t.Errorf("std after removal=%v want %v", r.StdDev(), std)
	}
	r.Remove(5)
	r.Remove(11)
	if r.N() != 0 || r.Mean() != 0 || r.StdDev() != 0 {
		t.Errorf("empty after removals: n=%d mean=%v std=%v", r.N(), r.Mean(), r.StdDev())
	}
}

// Property: adding then removing the same multiset restores statistics.
func TestRunningAddRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		var r Running
		base := make([]float64, 5)
		for i := range base {
			base[i] = rr.NormFloat64() * 100
			r.Add(base[i])
		}
		wantMean, wantStd := r.Mean(), r.StdDev()
		extra := make([]float64, 8)
		for i := range extra {
			extra[i] = rr.NormFloat64() * 100
			r.Add(extra[i])
		}
		for _, x := range extra {
			r.Remove(x)
		}
		return math.Abs(r.Mean()-wantMean) < 1e-6 && math.Abs(r.StdDev()-wantStd) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err=%v", err)
	}
	if _, _, err := MeanStd(nil); err != ErrEmpty {
		t.Errorf("MeanStd(nil) err=%v", err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err=%v", err)
	}
}

func TestSampleStd(t *testing.T) {
	if SampleStd([]float64{5}) != 0 {
		t.Errorf("SampleStd singleton != 0")
	}
	got := SampleStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935299395 // known value
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SampleStd=%v want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax=(%v,%v,%v)", min, max, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("q0=%v", q)
	}
	if q, _ := Quantile(xs, 1); q != 4 {
		t.Errorf("q1=%v", q)
	}
	if q, _ := Median(xs); q != 2.5 {
		t.Errorf("median=%v", q)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Errorf("expected range error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("expected ErrEmpty")
	}
	if q, _ := Quantile([]float64{42}, 0.7); q != 42 {
		t.Errorf("singleton quantile=%v", q)
	}
	// Input must not be reordered.
	orig := []float64{9, 1, 5}
	if _, err := Median(orig); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Errorf("Quantile mutated input: %v", orig)
	}
}

func TestChebyshevK(t *testing.T) {
	k, err := ChebyshevK(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1/math.Sqrt(0.1)) > 1e-12 {
		t.Errorf("k=%v", k)
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := ChebyshevK(bad); err == nil {
			t.Errorf("ChebyshevK(%v) accepted", bad)
		}
	}
}

func TestChebyshevBounds(t *testing.T) {
	iv, err := ChebyshevBounds(10, 2, 0.75) // k = 2
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Lo-6) > 1e-12 || math.Abs(iv.Hi-14) > 1e-12 {
		t.Errorf("bounds=%+v", iv)
	}
	if !iv.Contains(10) || iv.Contains(5) || iv.Contains(15) {
		t.Errorf("Contains wrong: %+v", iv)
	}
	if math.Abs(iv.Width()-8) > 1e-12 {
		t.Errorf("Width=%v", iv.Width())
	}
}

// Property: Chebyshev bounds really do contain ≥ p of a Gaussian sample
// (Gaussian concentration is far stronger than Chebyshev, so this holds
// with huge margin and validates the bound direction).
func TestChebyshevCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = rr.NormFloat64()*3 + 7
		}
		iv, err := ChebyshevBoundsFromSample(xs, 0.9)
		if err != nil {
			return false
		}
		inside := 0
		for _, x := range xs {
			if iv.Contains(x) {
				inside++
			}
		}
		return float64(inside)/float64(len(xs)) >= 0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChebyshevBoundsFromSampleEmpty(t *testing.T) {
	if _, err := ChebyshevBoundsFromSample(nil, 0.9); err == nil {
		t.Fatal("expected error for empty sample")
	}
}
