package stream

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/stats"
	"incbubbles/internal/vecmath"
	"incbubbles/internal/wal"
)

func pipeStreamCfg(dir string, pipelined bool) Config {
	cfg := Config{
		Dim: 2, Capacity: 300, Bubbles: 10, Warmup: 100, FlushEvery: 30, Seed: 4,
		Durability: &wal.Options{Dir: dir, CheckpointEvery: 3, KeepCheckpoints: 2, GroupCommit: 4},
	}
	if pipelined {
		cfg.Pipeline = &core.PipelineOptions{Depth: 2}
	}
	return cfg
}

// drive feeds n deterministic points through the window, flushing through
// flush() wherever the auto-flush threshold does not fire.
func drive(t *testing.T, w *Window, n int, seed int64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		c := vecmath.Point{float64(i % 3), float64(i % 5)}
		if err := w.Push(rng.GaussianPoint(c, 2), i%3); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

func windowFingerprint(t *testing.T, w *Window) []byte {
	t.Helper()
	fp, err := wal.Fingerprint(w.Summarizer())
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

// TestPipelinedWindowMatchesSerialDurable feeds the identical stream into
// a serial durable window and a pipelined one; the summaries must be
// bit-identical (the paper's determinism contract survives the staged
// scheduler end to end, eviction deletes included).
func TestPipelinedWindowMatchesSerialDurable(t *testing.T) {
	serial, err := NewWindow(pipeStreamCfg(t.TempDir(), false))
	if err != nil {
		t.Fatalf("serial window: %v", err)
	}
	piped, err := NewWindow(pipeStreamCfg(t.TempDir(), true))
	if err != nil {
		t.Fatalf("pipelined window: %v", err)
	}
	drive(t, serial, 800, 9)
	drive(t, piped, 800, 9)
	if _, err := serial.Flush(); err != nil {
		t.Fatalf("serial flush: %v", err)
	}
	if _, err := piped.Flush(); err != nil {
		t.Fatalf("pipelined flush: %v", err)
	}
	if sb, pb := serial.Summarizer().Batches(), piped.Summarizer().Batches(); sb != pb {
		t.Fatalf("batch counts diverge: serial %d, pipelined %d", sb, pb)
	}
	if !bytes.Equal(windowFingerprint(t, serial), windowFingerprint(t, piped)) {
		t.Fatal("pipelined window fingerprint differs from serial durable window")
	}
	if err := serial.Close(); err != nil {
		t.Fatalf("serial close: %v", err)
	}
	if err := piped.Close(); err != nil {
		t.Fatalf("pipelined close: %v", err)
	}
}

// TestFlushContextPipelinedCancelRetryable is the regression test for the
// cancellation contract: a context cancelled while the batch is
// mid-group-commit returns the cancellation, keeps the batch counted in
// Pending (in flight, neither lost nor duplicated), and the next flush
// observes its completion — converging to the same state as a serial
// durable window given the identical cancel-then-retry call sequence.
func TestFlushContextPipelinedCancelRetryable(t *testing.T) {
	run := func(t *testing.T, pipelined bool) *Window {
		w, err := NewWindow(pipeStreamCfg(t.TempDir(), pipelined))
		if err != nil {
			t.Fatalf("window: %v", err)
		}
		drive(t, w, 110, 9) // warm up, leave 10 updates buffered
		if !w.Ready() || w.Pending() == 0 {
			t.Fatalf("fixture: ready=%v pending=%d, want buffered updates", w.Ready(), w.Pending())
		}
		buffered := w.Pending()
		// Sampled before the cancelled flush: until that batch is reaped
		// the summarizer is owned by the scheduler's applier goroutine.
		before := w.Summarizer().Batches()
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := w.FlushContext(cancelled); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled flush: got %v, want context.Canceled", err)
		}
		if got := w.Pending(); got != buffered {
			t.Fatalf("pending after cancelled flush: %d, want %d (batch must stay retryable)", got, buffered)
		}
		if _, err := w.FlushContext(context.Background()); err != nil {
			t.Fatalf("retry flush: %v", err)
		}
		if w.Pending() != 0 {
			t.Fatalf("pending after retry: %d, want 0", w.Pending())
		}
		if got := w.Summarizer().Batches(); got != before+1 {
			t.Fatalf("batch applied %d times, want once", got-before)
		}
		drive(t, w, 100, 13)
		if _, err := w.Flush(); err != nil {
			t.Fatalf("final flush: %v", err)
		}
		return w
	}
	serial := run(t, false)
	piped := run(t, true)
	if !bytes.Equal(windowFingerprint(t, serial), windowFingerprint(t, piped)) {
		t.Fatal("cancel-then-retry diverges from serial durable window")
	}
	if err := serial.Close(); err != nil {
		t.Fatalf("serial close: %v", err)
	}
	if err := piped.Close(); err != nil {
		t.Fatalf("pipelined close: %v", err)
	}
}

// TestReapSettledTicketAfterCancel pins the reap classification when the
// in-flight ticket is already settled and the reaping context is
// cancelled: Ticket.Wait's select may return ctx.Err() even though the
// done channel is closed, and classifying on that would requeue (and so
// re-apply) a batch the applier already absorbed. The reap must instead
// re-read the ticket's own outcome — each round applies exactly once and
// leaves nothing pending. Several rounds because the faulty select branch
// was taken randomly.
func TestReapSettledTicketAfterCancel(t *testing.T) {
	w, err := NewWindow(pipeStreamCfg(t.TempDir(), true))
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	drive(t, w, 110, 9) // warm up, leave 10 updates buffered
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for round := 0; round < 6; round++ {
		if w.Pending() == 0 {
			t.Fatalf("round %d: fixture lost its buffered updates", round)
		}
		before := w.Summarizer().Batches()
		// Submit by hand so the ticket is provably settled before the
		// cancelled reap, the window w.inflight discipline intact.
		tk, err := w.sched.Submit(context.Background(), w.pending)
		if err != nil {
			t.Fatalf("round %d submit: %v", round, err)
		}
		w.pending = nil
		w.inflight = tk
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := w.FlushContext(cancelled); err != nil {
			t.Fatalf("round %d: reaping a settled ticket returned %v", round, err)
		}
		if got := w.Summarizer().Batches(); got != before+1 {
			t.Fatalf("round %d: batch applied %d times, want once", round, got-before)
		}
		if w.Pending() != 0 {
			t.Fatalf("round %d: settled batch requeued, pending=%d", round, w.Pending())
		}
		drive(t, w, 10, int64(40+round)) // rebuffer below the auto-flush threshold
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPipelinedWindowCheckpointFailureDoesNotRequeue drives identical
// streams through a serial window and a pipelined one whose async
// checkpoint encode fails once: the flush surfaces the retryable
// checkpoint error, but the batch it rode on is committed — it must not
// return to the pending buffer, and the retried cadence must converge to
// the serial fingerprint.
func TestPipelinedWindowCheckpointFailureDoesNotRequeue(t *testing.T) {
	run := func(t *testing.T, pipelined bool) *Window {
		cfg := pipeStreamCfg(t.TempDir(), pipelined)
		var reg *failpoint.Registry
		if pipelined {
			reg = failpoint.New(11)
			cfg.Durability.Failpoints = reg
		}
		w, err := NewWindow(cfg)
		if err != nil {
			t.Fatalf("window: %v", err)
		}
		drive(t, w, 110, 9)
		if pipelined {
			reg.ArmError(wal.FailAsyncCkptEncode, 1, nil)
		}
		sawCkptErr := false
		for i := 0; i < 6; i++ {
			drive(t, w, 10, int64(60+i))
			if _, err := w.FlushContext(context.Background()); err != nil {
				if !pipelined || !errors.Is(err, wal.ErrCheckpointRetryable) {
					t.Fatalf("flush %d: %v", i, err)
				}
				if got := w.Pending(); got != 0 {
					t.Fatalf("flush %d: applied batch requeued after checkpoint failure, pending=%d", i, got)
				}
				sawCkptErr = true
			}
		}
		if pipelined && !sawCkptErr {
			t.Fatal("armed checkpoint failpoint never surfaced through FlushContext")
		}
		if w.Log().Poisoned() != nil {
			t.Fatalf("log poisoned by checkpoint failure: %v", w.Log().Poisoned())
		}
		return w
	}
	serial := run(t, false)
	piped := run(t, true)
	if sb, pb := serial.Summarizer().Batches(), piped.Summarizer().Batches(); sb != pb {
		t.Fatalf("batch counts diverge: serial %d, pipelined %d", sb, pb)
	}
	if !bytes.Equal(windowFingerprint(t, serial), windowFingerprint(t, piped)) {
		t.Fatal("checkpoint-failure run diverges from serial durable window")
	}
	if err := serial.Close(); err != nil {
		t.Fatalf("serial close: %v", err)
	}
	if err := piped.Close(); err != nil {
		t.Fatalf("pipelined close: %v", err)
	}
}

// TestPipelinedWindowCleanWalFailureRefrontsBatch injects a healthy group
// append error: the flush fails, the batch returns to the front of the
// pending buffer, and a plain retry completes with the log unpoisoned.
func TestPipelinedWindowCleanWalFailureRefrontsBatch(t *testing.T) {
	reg := failpoint.New(31)
	cfg := pipeStreamCfg(t.TempDir(), true)
	cfg.Durability.Failpoints = reg
	w, err := NewWindow(cfg)
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	drive(t, w, 110, 9)
	buffered := w.Pending()
	if buffered == 0 {
		t.Fatal("fixture: no buffered updates")
	}
	reg.ArmError(wal.FailGroupAppend, 1, nil)
	if _, err := w.FlushContext(context.Background()); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("flush: got %v, want injected error", err)
	}
	if w.Log().Poisoned() != nil {
		t.Fatalf("log poisoned by clean failure: %v", w.Log().Poisoned())
	}
	if got := w.Pending(); got != buffered {
		t.Fatalf("pending after clean failure: %d, want %d", got, buffered)
	}
	if _, err := w.FlushContext(context.Background()); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if w.Pending() != 0 {
		t.Fatalf("pending after retry: %d, want 0", w.Pending())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPipelinedWindowResume closes a pipelined window mid-stream, resumes
// it from disk with the same config, and finishes the stream: recovery
// must reconstruct a pipelined window that keeps absorbing updates.
func TestPipelinedWindowResume(t *testing.T) {
	dir := t.TempDir()
	cfg := pipeStreamCfg(dir, true)
	w, err := NewWindow(cfg)
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	drive(t, w, 400, 9)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := Resume(cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !r.Ready() || r.sched == nil {
		t.Fatalf("resumed window not pipelined: ready=%v", r.Ready())
	}
	drive(t, r, 200, 13)
	if _, err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := r.Summarizer().Set().CheckInvariants(); err != nil {
		t.Fatalf("resumed set: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
