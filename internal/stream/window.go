// Package stream adapts incremental data bubbles to the data-stream
// setting the paper discusses in §1 and names as future work in §6. A
// data stream is treated as the degenerate incremental database the paper
// describes: a sliding window of the most recent points, where every
// arrival is an insertion and every eviction of an expired point is a
// deletion. The incremental summarizer absorbs these updates in small
// batches, so an up-to-date hierarchical clustering of the window is
// available at any time without re-summarizing.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/pipeline"
	"incbubbles/internal/vecmath"
	"incbubbles/internal/wal"
)

// Config parameterises a sliding window summarizer.
type Config struct {
	// Dim is the dimensionality of the stream.
	Dim int
	// Capacity is the window size in points; the oldest point is evicted
	// when a new arrival would exceed it.
	Capacity int
	// Bubbles is the number of data bubbles summarizing the window.
	// Default Capacity/100, at least 10.
	Bubbles int
	// FlushEvery is how many buffered updates trigger a maintenance pass
	// on the summarizer. Default Capacity/20, at least 1. Quality
	// maintenance (β classification, merge/split) runs per flush, not per
	// point, matching the paper's batch update model.
	FlushEvery int
	// Warmup is how many points must arrive before the initial bubbles
	// are built. Default 4·Bubbles, capped at Capacity.
	Warmup int
	// Summarizer tunes the underlying incremental scheme.
	Summarizer core.Config
	// Seed drives bubble construction. Default 1.
	Seed int64
	// Durability, when non-nil, persists the summary through a write-ahead
	// log and checkpoints in Durability.Dir, activated once warmup
	// completes. Updates become durable when flushed (per FlushEvery), not
	// per point; a crash loses at most the un-flushed buffer. Use Resume
	// to reopen a window from such a directory.
	Durability *wal.Options
	// Pipeline, when non-nil, routes flushes through the staged ingestion
	// scheduler (DESIGN.md §13): speculative phase-1 search against a
	// snapshot view, and — when combined with Durability — WAL group
	// commit and async checkpoints. Depth must be at least 1, and a
	// durable pipelined window requires Durability.GroupCommit ≥ 1. The
	// summary stays bit-identical to a Depth-0 durable window.
	Pipeline *core.PipelineOptions
}

func (c Config) withDefaults() Config {
	if c.Bubbles == 0 {
		c.Bubbles = c.Capacity / 100
		if c.Bubbles < 10 {
			c.Bubbles = 10
		}
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = c.Capacity / 20
		if c.FlushEvery < 1 {
			c.FlushEvery = 1
		}
	}
	if c.Warmup == 0 {
		c.Warmup = 4 * c.Bubbles
	}
	if c.Warmup > c.Capacity {
		c.Warmup = c.Capacity
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Dim <= 0 {
		return errors.New("stream: dimension must be positive")
	}
	if c.Capacity < 10 {
		return errors.New("stream: capacity must be at least 10")
	}
	if c.Bubbles < 2 || c.Bubbles > c.Capacity/2 {
		return fmt.Errorf("stream: bubbles=%d out of range for capacity %d", c.Bubbles, c.Capacity)
	}
	if c.Warmup < c.Bubbles {
		return errors.New("stream: warmup smaller than bubble count")
	}
	if c.Pipeline != nil {
		if c.Pipeline.Depth < 1 {
			return errors.New("stream: pipelined window needs Pipeline.Depth ≥ 1")
		}
		if c.Durability != nil && c.Durability.GroupCommit < 1 {
			return errors.New("stream: pipelined durability requires Durability.GroupCommit ≥ 1")
		}
	}
	return nil
}

// Window is a sliding-window stream summarizer. It is not safe for
// concurrent use; wrap it if multiple goroutines feed one stream.
type Window struct {
	cfg      Config
	db       *dataset.DB
	sum      *core.Summarizer
	log      *wal.Log
	sched    *pipeline.Scheduler
	inflight *pipeline.Ticket
	fifo     []dataset.PointID
	head     int // index of the oldest live entry in fifo
	pending  dataset.Batch
	arrived  int
	replayed int
}

// NewWindow creates an empty sliding-window summarizer.
func NewWindow(cfg Config) (*Window, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db, err := dataset.New(cfg.Dim)
	if err != nil {
		return nil, err
	}
	return &Window{cfg: cfg, db: db}, nil
}

// Len returns the number of points currently in the window.
func (w *Window) Len() int { return w.db.Len() }

// Arrived returns the total number of points pushed so far.
func (w *Window) Arrived() int { return w.arrived }

// Ready reports whether the initial summary has been built (the warmup
// phase is over).
func (w *Window) Ready() bool { return w.sum != nil }

// DB exposes the window's backing database (read-only use).
func (w *Window) DB() *dataset.DB { return w.db }

// Summarizer returns the underlying incremental summarizer, or nil before
// warmup completes.
func (w *Window) Summarizer() *core.Summarizer { return w.sum }

// Config returns the effective configuration.
func (w *Window) Config() Config { return w.cfg }

// Push appends one stream element, evicting the oldest point when the
// window is full. Maintenance runs automatically every FlushEvery updates
// once the summary exists.
func (w *Window) Push(p vecmath.Point, label int) error {
	// A pipelined flush left in flight by a cancelled context must finish
	// before the window mutates the database the applier reads from.
	if w.inflight != nil {
		if _, err := w.reapInflight(context.Background()); err != nil {
			return err
		}
	}
	// Evict before inserting so the window never exceeds capacity.
	if w.db.Len() >= w.cfg.Capacity {
		if err := w.evictOldest(); err != nil {
			return err
		}
	}
	id, err := w.db.Insert(p, label)
	if err != nil {
		return err
	}
	w.fifo = append(w.fifo, id)
	w.arrived++
	if w.sum != nil {
		rec, err := w.db.Get(id)
		if err != nil {
			return err
		}
		w.pending = append(w.pending, dataset.Update{Op: dataset.OpInsert, ID: id, P: rec.P, Label: label})
		if len(w.pending) >= w.cfg.FlushEvery {
			if _, err := w.Flush(); err != nil {
				return err
			}
		}
		return nil
	}
	if w.db.Len() >= w.cfg.Warmup {
		return w.build()
	}
	return nil
}

func (w *Window) evictOldest() error {
	for w.head < len(w.fifo) {
		id := w.fifo[w.head]
		w.head++
		if !w.db.Contains(id) {
			continue // already gone (defensive; windows never delete otherwise)
		}
		rec, err := w.db.Delete(id)
		if err != nil {
			return err
		}
		if w.sum != nil {
			w.pending = append(w.pending, dataset.Update{Op: dataset.OpDelete, ID: id, P: rec.P, Label: rec.Label})
		}
		// Compact the fifo once half of it is dead prefix.
		if w.head > len(w.fifo)/2 && w.head > 1024 {
			w.fifo = append([]dataset.PointID(nil), w.fifo[w.head:]...)
			w.head = 0
		}
		return nil
	}
	return errors.New("stream: eviction requested on empty window")
}

func (w *Window) coreOptions() core.Options {
	return core.Options{
		NumBubbles:            w.cfg.Bubbles,
		UseTriangleInequality: true,
		Seed:                  w.cfg.Seed,
		Config:                w.cfg.Summarizer,
		Pipeline:              w.cfg.Pipeline,
	}
}

// attachScheduler starts the staged ingestion scheduler over a freshly
// built or resumed summarizer. The window's batches are pre-applied to
// w.db at Push time, so the scheduler runs in non-replay mode.
func (w *Window) attachScheduler() error {
	if w.cfg.Pipeline == nil {
		return nil
	}
	sched, err := pipeline.New(w.sum, w.log, pipeline.Config{})
	if err != nil {
		return err
	}
	w.sched = sched
	return nil
}

func (w *Window) build() error {
	if w.cfg.Durability != nil {
		sum, log, err := wal.New(w.db, w.coreOptions(), *w.cfg.Durability)
		if err != nil {
			return err
		}
		w.sum, w.log = sum, log
		return w.attachScheduler()
	}
	sum, err := core.New(w.db, w.coreOptions())
	if err != nil {
		return err
	}
	w.sum = sum
	return w.attachScheduler()
}

// Resume reopens a durable window from cfg.Durability.Dir: the summary
// and its points come from the newest usable checkpoint plus WAL replay,
// and the FIFO eviction order is reconstructed from the point IDs (IDs
// are assigned in arrival order and never reused). cfg must carry the
// same Seed, Bubbles and Summarizer config as the original run. The total
// arrival count is not durable; Arrived restarts at the window size. A
// window that crashed before warmup left no durable state — wal.ErrNoState
// signals that NewWindow is the right entry point.
func Resume(cfg Config) (*Window, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Durability == nil {
		return nil, errors.New("stream: Resume requires Config.Durability")
	}
	w := &Window{cfg: cfg}
	st, err := wal.Resume(w.coreOptions(), *cfg.Durability)
	if err != nil {
		return nil, err
	}
	w.db, w.sum, w.log = st.DB, st.Summarizer, st.Log
	w.replayed = st.Replayed
	if w.db.Dim() != cfg.Dim {
		return nil, fmt.Errorf("stream: recovered dimensionality %d, config says %d", w.db.Dim(), cfg.Dim)
	}
	w.fifo = w.db.IDs()
	sort.Slice(w.fifo, func(a, b int) bool { return w.fifo[a] < w.fifo[b] })
	w.arrived = w.db.Len()
	if err := w.attachScheduler(); err != nil {
		return nil, err
	}
	return w, nil
}

// Log exposes the durability log, or nil when the window is not durable
// (or warmup has not completed).
func (w *Window) Log() *wal.Log { return w.log }

// Replayed returns how many WAL batches Resume re-applied on top of the
// checkpoint this window recovered from (zero for fresh windows).
func (w *Window) Replayed() int { return w.replayed }

// Flush applies the buffered updates to the summarizer immediately and
// returns the maintenance statistics. Flushing with nothing pending (or
// before warmup) is a no-op.
func (w *Window) Flush() (core.BatchStats, error) {
	return w.FlushContext(context.Background())
}

// FlushContext is Flush with cancellation, inheriting ApplyBatchContext's
// all-or-nothing contract. The buffer is cleared only when the batch was
// actually absorbed — the batch counter advancing is the commit signal,
// which also covers an applied batch whose trailing checkpoint failed.
// On a recoverable failure — cancellation, a WAL append rejected before
// anything reached disk — the batch was neither applied nor logged, so
// it stays pending for a retry (its points are already in w.db; dropping
// it would desynchronize the summary from the database for good). A
// poisoned log also clears the buffer: the batch is either durably
// logged (replay re-applies it) or lost with the torn tail, and either
// way only wal.Resume can continue from here.
//
// On a pipelined window the batch travels through the scheduler, and a
// cancelled context can return while the batch is still mid-group-commit
// on the applier goroutine. The batch then stays in flight — not lost,
// not duplicated — and the next flush (or push) waits it out and
// observes its real outcome before new work is admitted.
func (w *Window) FlushContext(ctx context.Context) (core.BatchStats, error) {
	if w.sum == nil {
		return core.BatchStats{}, nil
	}
	if w.sched != nil {
		return w.flushPipelined(ctx)
	}
	if len(w.pending) == 0 {
		return core.BatchStats{}, nil
	}
	before := w.sum.Batches()
	stats, err := w.sum.ApplyBatchContext(ctx, w.pending)
	if w.sum.Batches() != before || (w.log != nil && w.log.Poisoned() != nil) {
		w.pending = w.pending[:0]
	}
	return stats, err
}

func (w *Window) flushPipelined(ctx context.Context) (core.BatchStats, error) {
	if w.inflight != nil {
		if stats, err := w.reapInflight(ctx); err != nil {
			return stats, err
		}
	}
	if len(w.pending) == 0 {
		return core.BatchStats{}, nil
	}
	tk, err := w.sched.Submit(ctx, w.pending)
	if err != nil {
		return core.BatchStats{}, err
	}
	// Ownership of the buffered updates moves to the ticket; if the wait
	// below is cancelled they ride along in flight, not in w.pending.
	w.pending = nil
	w.inflight = tk
	return w.reapInflight(ctx)
}

// reapInflight waits out the in-flight ticket and settles the buffer
// contract: a context cancellation keeps the ticket in flight for a later
// retry; a clean scheduler failure (nothing applied, nothing durable)
// puts the batch back at the front of the pending buffer; a fatal one
// (poisoned log, sticky scheduler error) drops it, because the batch is
// either already durable or lost with the log and only wal.Resume can
// continue. An applied batch is never requeued, even when its ticket
// carries an error — that is a trailing checkpoint failure, and the
// batch counter advancing is the commit signal, same as the serial path.
func (w *Window) reapInflight(ctx context.Context) (core.BatchStats, error) {
	stats, err := w.inflight.Wait(ctx)
	if err != nil && ctx.Err() != nil {
		if !w.inflight.Done() {
			return stats, err // still in flight; reaped by the next flush or push
		}
		// Wait's select raced a concurrent completion and returned the
		// cancellation even though the ticket is settled. Re-read the
		// real outcome: classifying on ctx.Err() here could requeue a
		// batch the applier already absorbed — duplicate application.
		//lint:allow ctxflow settled-ticket re-read must not observe the cancelled ctx: the outcome already exists and returns immediately
		stats, err = w.inflight.Wait(context.Background())
	}
	tk := w.inflight
	w.inflight = nil
	if err == nil {
		return stats, nil
	}
	if !tk.Applied() && w.sched.Err() == nil && (w.log == nil || w.log.Poisoned() == nil) {
		batch := tk.Batch()
		merged := make(dataset.Batch, 0, len(batch)+len(w.pending))
		merged = append(merged, batch...)
		merged = append(merged, w.pending...)
		w.pending = merged
	}
	return stats, err
}

// Checkpoint flushes the buffer and persists the current summary. It is
// a no-op before warmup and an error on a non-durable window.
func (w *Window) Checkpoint() error {
	if w.sum == nil {
		return nil
	}
	if w.log == nil {
		return errors.New("stream: window has no durability configured")
	}
	if _, err := w.Flush(); err != nil {
		return err
	}
	return w.log.Checkpoint(w.sum)
}

// Close flushes, drains the ingestion scheduler when pipelined (this is
// where an async-checkpoint failure with no later batch to report through
// surfaces), takes a final checkpoint when durable, and releases the log.
// The window must not be used afterwards.
func (w *Window) Close() error {
	var err error
	if w.sum != nil {
		_, err = w.Flush()
	}
	if w.sched != nil {
		if cerr := w.sched.Close(); err == nil {
			err = cerr
		}
		w.sched = nil
	}
	if w.log == nil {
		return err
	}
	if err == nil {
		err = w.log.Checkpoint(w.sum)
	}
	if cerr := w.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Pending returns the number of buffered, not-yet-applied updates,
// including a batch a cancelled flush left in flight.
func (w *Window) Pending() int {
	n := len(w.pending)
	if w.inflight != nil {
		n += len(w.inflight.Batch())
	}
	return n
}
