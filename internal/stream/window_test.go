package stream

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"incbubbles/internal/eval"
	"incbubbles/internal/extract"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/stats"
	"incbubbles/internal/vecmath"
	"incbubbles/internal/wal"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Capacity: 100},
		{Dim: 2, Capacity: 5},
		{Dim: 2, Capacity: 100, Bubbles: 80},
		{Dim: 2, Capacity: 100, Bubbles: 1},
		{Dim: 2, Capacity: 100, Bubbles: 20, Warmup: 5},
	}
	for i, c := range bad {
		if _, err := NewWindow(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	w, err := NewWindow(Config{Dim: 2, Capacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Config()
	if cfg.Bubbles != 10 || cfg.FlushEvery != 50 || cfg.Warmup != 40 {
		t.Fatalf("defaults=%+v", cfg)
	}
}

func TestWarmupThenReady(t *testing.T) {
	w, err := NewWindow(Config{Dim: 2, Capacity: 500, Bubbles: 10, Warmup: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 99; i++ {
		if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
			t.Fatal(err)
		}
		if w.Ready() {
			t.Fatalf("ready after %d points, warmup is 100", i+1)
		}
	}
	if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
		t.Fatal(err)
	}
	if !w.Ready() {
		t.Fatal("not ready after warmup")
	}
	if w.Summarizer() == nil || w.Summarizer().Set().Len() != 10 {
		t.Fatal("summarizer missing after warmup")
	}
	if w.Len() != 100 || w.Arrived() != 100 {
		t.Fatalf("Len=%d Arrived=%d", w.Len(), w.Arrived())
	}
}

func TestSlidingEviction(t *testing.T) {
	w, err := NewWindow(Config{Dim: 1, Capacity: 200, Bubbles: 8, Warmup: 50, FlushEvery: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	for i := 0; i < 1000; i++ {
		if err := w.Push(vecmath.Point{rng.Normal(0, 1)}, 0); err != nil {
			t.Fatal(err)
		}
		if w.Len() > 200 {
			t.Fatalf("window exceeded capacity: %d", w.Len())
		}
	}
	if w.Len() != 200 {
		t.Fatalf("steady-state Len=%d", w.Len())
	}
	if w.Arrived() != 1000 {
		t.Fatalf("Arrived=%d", w.Arrived())
	}
	// Flush the tail and verify ownership consistency.
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending=%d after flush", w.Pending())
	}
	if w.Summarizer().Set().OwnedPoints() != w.Len() {
		t.Fatalf("owned=%d want %d", w.Summarizer().Set().OwnedPoints(), w.Len())
	}
	if err := w.Summarizer().Set().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConceptDriftTracked(t *testing.T) {
	// The stream's distribution moves: the window summary must follow and
	// keep separating the two current clusters.
	w, err := NewWindow(Config{Dim: 2, Capacity: 2000, Bubbles: 40, FlushEvery: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	push := func(center vecmath.Point, label int, n int) {
		for i := 0; i < n; i++ {
			if err := w.Push(rng.GaussianPoint(center, 2), label); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 1: clusters A and B.
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			push(vecmath.Point{10, 10}, 0, 1)
		} else {
			push(vecmath.Point{60, 60}, 1, 1)
		}
	}
	// Phase 2: A vanishes from the stream; C appears elsewhere.
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			push(vecmath.Point{60, 60}, 1, 1)
		} else {
			push(vecmath.Point{110, 10}, 2, 1)
		}
	}
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Old cluster A has slid out entirely.
	if got := w.DB().LabelHistogram()[0]; got != 0 {
		t.Fatalf("stale points survive in window: %d", got)
	}
	f, err := eval.ClusteringFScore(w.DB(), w.Summarizer().Set(), 10, extract.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.9 {
		t.Fatalf("window clustering degraded under drift: F=%v", f)
	}
}

// Property: for any push/flush interleaving the window never exceeds
// capacity and, once ready, bubble population always equals window size
// after a flush.
func TestWindowInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		w, err := NewWindow(Config{Dim: 2, Capacity: 150, Bubbles: 8, Warmup: 40, FlushEvery: 10, Seed: seed})
		if err != nil {
			return false
		}
		rng := stats.NewRNG(seed)
		for i := 0; i < 500; i++ {
			if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 10), 0); err != nil {
				return false
			}
			if w.Len() > 150 {
				return false
			}
		}
		if _, err := w.Flush(); err != nil {
			return false
		}
		if !w.Ready() {
			return false
		}
		total := 0
		for _, b := range w.Summarizer().Set().Bubbles() {
			total += b.N()
		}
		return total == w.Len() && w.Summarizer().Set().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushBeforeWarmupNoop(t *testing.T) {
	w, err := NewWindow(Config{Dim: 2, Capacity: 100, Bubbles: 5, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Flush()
	if err != nil || stats.Inserted != 0 {
		t.Fatalf("pre-warmup flush: %+v err=%v", stats, err)
	}
}

// TestDurableWindowResume pushes a stream through a durable window, kills
// it (abandons without Close), resumes, and checks the recovered window
// matches the durable prefix and keeps sliding correctly.
func TestDurableWindowResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dim: 2, Capacity: 300, Bubbles: 10, Warmup: 100, FlushEvery: 25, Seed: 3,
		Durability: &wal.Options{Dir: dir, CheckpointEvery: 2},
	}
	w, err := NewWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	for i := 0; i < 450; i++ {
		if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if w.Log() == nil {
		t.Fatal("durable window has no log after warmup")
	}
	durableBatches := w.Summarizer().Batches()
	durableLen := w.Len() - w.Pending() // un-flushed pushes are lost by design
	_ = durableLen

	// Simulated kill: no Close, no final flush.
	r, err := Resume(cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if r.Summarizer().Batches() != durableBatches {
		t.Fatalf("resumed at batch %d, want %d", r.Summarizer().Batches(), durableBatches)
	}
	if err := r.Summarizer().Set().CheckInvariants(); err != nil {
		t.Fatalf("recovered set: %v", err)
	}
	if r.Summarizer().Set().OwnedPoints() != r.Len() {
		t.Fatalf("owned=%d len=%d", r.Summarizer().Set().OwnedPoints(), r.Len())
	}
	// The recovered window keeps sliding: push enough to force evictions
	// through the reconstructed FIFO and flush.
	before := r.Len()
	for i := 0; i < 200; i++ {
		if err := r.Push(rng.GaussianPoint(vecmath.Point{1, 1}, 2), 1); err != nil {
			t.Fatalf("post-resume push %d: %v", i, err)
		}
	}
	if r.Len() > cfg.Capacity || r.Len() < before {
		t.Fatalf("window size %d after resume pushes", r.Len())
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Close checkpointed everything: a second resume lands exactly there.
	r2, err := Resume(cfg)
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if r2.Replayed() != 0 {
		t.Fatalf("replayed %d batches after a clean Close", r2.Replayed())
	}
	if r2.Len() != r.Len() {
		t.Fatalf("len=%d want %d", r2.Len(), r.Len())
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeWithoutState maps a missing directory to wal.ErrNoState so
// callers can fall back to NewWindow.
func TestResumeWithoutState(t *testing.T) {
	cfg := Config{Dim: 2, Capacity: 100, Durability: &wal.Options{Dir: t.TempDir()}}
	if _, err := Resume(cfg); !errors.Is(err, wal.ErrNoState) {
		t.Fatalf("want ErrNoState, got %v", err)
	}
	if _, err := Resume(Config{Dim: 2, Capacity: 100}); err == nil {
		t.Fatal("Resume without Durability accepted")
	}
}

// TestFlushErrorKeepsPendingForRetry injects a recoverable WAL append
// failure (nothing reached disk, log healthy): the buffered batch was
// neither logged nor applied, so it must stay pending — its points are
// already in the database, and dropping it would desynchronize the
// summary from the database permanently. A retry then absorbs it.
func TestFlushErrorKeepsPendingForRetry(t *testing.T) {
	reg := failpoint.New(11)
	cfg := Config{
		Dim: 2, Capacity: 300, Bubbles: 10, Warmup: 100, FlushEvery: 1 << 30, Seed: 5,
		Durability: &wal.Options{Dir: t.TempDir(), Failpoints: reg},
	}
	w, err := NewWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	for i := 0; i < 150; i++ {
		if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	n := w.Pending()
	if n == 0 {
		t.Fatal("nothing pending")
	}
	batches := w.Summarizer().Batches()
	reg.ArmError(wal.FailAppendWrite, 1, nil)
	if _, err := w.Flush(); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if w.Log().Poisoned() != nil {
		t.Fatalf("recoverable append failure poisoned the log: %v", w.Log().Poisoned())
	}
	if w.Pending() != n {
		t.Fatalf("pending %d after recoverable flush failure, want %d kept for retry", w.Pending(), n)
	}
	if _, err := w.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if w.Pending() != 0 {
		t.Fatalf("pending %d after successful retry", w.Pending())
	}
	if got := w.Summarizer().Batches(); got != batches+1 {
		t.Fatalf("batches=%d want %d", got, batches+1)
	}
	// Summary and database agree again: every windowed point is owned.
	if owned := w.Summarizer().Set().OwnedPoints(); owned != w.Len() {
		t.Fatalf("owned=%d len=%d after retry", owned, w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestFlushContextCancelKeepsPending cancels a flush: the buffer must
// survive untouched and a later flush applies it.
func TestFlushContextCancelKeepsPending(t *testing.T) {
	w, err := NewWindow(Config{Dim: 2, Capacity: 300, Bubbles: 10, Warmup: 100, FlushEvery: 1 << 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	for i := 0; i < 150; i++ {
		if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
			t.Fatal(err)
		}
	}
	if w.Pending() == 0 {
		t.Fatal("nothing pending")
	}
	n := w.Pending()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.FlushContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if w.Pending() != n {
		t.Fatalf("pending %d after cancelled flush, want %d", w.Pending(), n)
	}
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 0 {
		t.Fatal("flush left pending updates")
	}
}
