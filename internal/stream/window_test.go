package stream

import (
	"testing"
	"testing/quick"

	"incbubbles/internal/eval"
	"incbubbles/internal/extract"
	"incbubbles/internal/stats"
	"incbubbles/internal/vecmath"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Capacity: 100},
		{Dim: 2, Capacity: 5},
		{Dim: 2, Capacity: 100, Bubbles: 80},
		{Dim: 2, Capacity: 100, Bubbles: 1},
		{Dim: 2, Capacity: 100, Bubbles: 20, Warmup: 5},
	}
	for i, c := range bad {
		if _, err := NewWindow(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	w, err := NewWindow(Config{Dim: 2, Capacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Config()
	if cfg.Bubbles != 10 || cfg.FlushEvery != 50 || cfg.Warmup != 40 {
		t.Fatalf("defaults=%+v", cfg)
	}
}

func TestWarmupThenReady(t *testing.T) {
	w, err := NewWindow(Config{Dim: 2, Capacity: 500, Bubbles: 10, Warmup: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 99; i++ {
		if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
			t.Fatal(err)
		}
		if w.Ready() {
			t.Fatalf("ready after %d points, warmup is 100", i+1)
		}
	}
	if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 3), 0); err != nil {
		t.Fatal(err)
	}
	if !w.Ready() {
		t.Fatal("not ready after warmup")
	}
	if w.Summarizer() == nil || w.Summarizer().Set().Len() != 10 {
		t.Fatal("summarizer missing after warmup")
	}
	if w.Len() != 100 || w.Arrived() != 100 {
		t.Fatalf("Len=%d Arrived=%d", w.Len(), w.Arrived())
	}
}

func TestSlidingEviction(t *testing.T) {
	w, err := NewWindow(Config{Dim: 1, Capacity: 200, Bubbles: 8, Warmup: 50, FlushEvery: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	for i := 0; i < 1000; i++ {
		if err := w.Push(vecmath.Point{rng.Normal(0, 1)}, 0); err != nil {
			t.Fatal(err)
		}
		if w.Len() > 200 {
			t.Fatalf("window exceeded capacity: %d", w.Len())
		}
	}
	if w.Len() != 200 {
		t.Fatalf("steady-state Len=%d", w.Len())
	}
	if w.Arrived() != 1000 {
		t.Fatalf("Arrived=%d", w.Arrived())
	}
	// Flush the tail and verify ownership consistency.
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending=%d after flush", w.Pending())
	}
	if w.Summarizer().Set().OwnedPoints() != w.Len() {
		t.Fatalf("owned=%d want %d", w.Summarizer().Set().OwnedPoints(), w.Len())
	}
	if err := w.Summarizer().Set().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConceptDriftTracked(t *testing.T) {
	// The stream's distribution moves: the window summary must follow and
	// keep separating the two current clusters.
	w, err := NewWindow(Config{Dim: 2, Capacity: 2000, Bubbles: 40, FlushEvery: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	push := func(center vecmath.Point, label int, n int) {
		for i := 0; i < n; i++ {
			if err := w.Push(rng.GaussianPoint(center, 2), label); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 1: clusters A and B.
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			push(vecmath.Point{10, 10}, 0, 1)
		} else {
			push(vecmath.Point{60, 60}, 1, 1)
		}
	}
	// Phase 2: A vanishes from the stream; C appears elsewhere.
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			push(vecmath.Point{60, 60}, 1, 1)
		} else {
			push(vecmath.Point{110, 10}, 2, 1)
		}
	}
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Old cluster A has slid out entirely.
	if got := w.DB().LabelHistogram()[0]; got != 0 {
		t.Fatalf("stale points survive in window: %d", got)
	}
	f, err := eval.ClusteringFScore(w.DB(), w.Summarizer().Set(), 10, extract.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.9 {
		t.Fatalf("window clustering degraded under drift: F=%v", f)
	}
}

// Property: for any push/flush interleaving the window never exceeds
// capacity and, once ready, bubble population always equals window size
// after a flush.
func TestWindowInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		w, err := NewWindow(Config{Dim: 2, Capacity: 150, Bubbles: 8, Warmup: 40, FlushEvery: 10, Seed: seed})
		if err != nil {
			return false
		}
		rng := stats.NewRNG(seed)
		for i := 0; i < 500; i++ {
			if err := w.Push(rng.GaussianPoint(vecmath.Point{0, 0}, 10), 0); err != nil {
				return false
			}
			if w.Len() > 150 {
				return false
			}
		}
		if _, err := w.Flush(); err != nil {
			return false
		}
		if !w.Ready() {
			return false
		}
		total := 0
		for _, b := range w.Summarizer().Set().Bubbles() {
			total += b.N()
		}
		return total == w.Len() && w.Summarizer().Set().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushBeforeWarmupNoop(t *testing.T) {
	w, err := NewWindow(Config{Dim: 2, Capacity: 100, Bubbles: 5, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.Flush()
	if err != nil || stats.Inserted != 0 {
		t.Fatalf("pre-warmup flush: %+v err=%v", stats, err)
	}
}
