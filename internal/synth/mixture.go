// Package synth generates the synthetic dynamic databases of the paper's
// evaluation (§5): Gaussian-mixture databases with uniform background noise
// whose clustering structure changes over time through batches of
// insertions and deletions. Six scenarios are provided — Random, Appear,
// Extreme appear, Disappear, Gradmove and Complex — for dimensionalities
// 2, 5, 10 and 20, all reproducible from a single seed.
package synth

import (
	"errors"
	"fmt"

	"incbubbles/internal/dataset"
	"incbubbles/internal/stats"
	"incbubbles/internal/vecmath"
)

// Cluster describes one Gaussian component of a mixture.
type Cluster struct {
	Label  int           // ground-truth label carried into the dataset
	Center vecmath.Point // mean
	Std    float64       // isotropic standard deviation
	Weight float64       // relative sampling weight (need not be normalised)
}

// Sample draws one point from the cluster.
func (c *Cluster) Sample(rng *stats.RNG) vecmath.Point {
	return rng.GaussianPoint(c.Center, c.Std)
}

// Mixture is a Gaussian mixture plus a uniform noise background over an
// axis-aligned box. It is the static snapshot from which points are drawn;
// scenarios mutate a mixture between batches.
type Mixture struct {
	Dim       int
	Clusters  []*Cluster
	NoiseFrac float64 // fraction of samples that are uniform noise
	NoiseLo   vecmath.Point
	NoiseHi   vecmath.Point
}

// Validate checks structural consistency of the mixture.
func (m *Mixture) Validate() error {
	if m.Dim <= 0 {
		return errors.New("synth: dimension must be positive")
	}
	if m.NoiseFrac < 0 || m.NoiseFrac > 1 {
		return fmt.Errorf("synth: noise fraction %v out of [0,1]", m.NoiseFrac)
	}
	if m.NoiseFrac > 0 {
		if m.NoiseLo.Dim() != m.Dim || m.NoiseHi.Dim() != m.Dim {
			return errors.New("synth: noise box dimensionality mismatch")
		}
		for j := 0; j < m.Dim; j++ {
			if m.NoiseLo[j] >= m.NoiseHi[j] {
				return fmt.Errorf("synth: degenerate noise box on axis %d", j)
			}
		}
	}
	if len(m.Clusters) == 0 && m.NoiseFrac == 0 {
		return errors.New("synth: mixture has no components")
	}
	var w float64
	for i, c := range m.Clusters {
		if c.Center.Dim() != m.Dim {
			return fmt.Errorf("synth: cluster %d center dimensionality mismatch", i)
		}
		if c.Std <= 0 {
			return fmt.Errorf("synth: cluster %d has non-positive std", i)
		}
		if c.Weight < 0 {
			return fmt.Errorf("synth: cluster %d has negative weight", i)
		}
		w += c.Weight
	}
	if len(m.Clusters) > 0 && w <= 0 {
		return errors.New("synth: cluster weights sum to zero")
	}
	return nil
}

// Sample draws one labelled point from the mixture: with probability
// NoiseFrac a uniform noise point (label dataset.Noise), otherwise a point
// from a weight-proportional cluster.
func (m *Mixture) Sample(rng *stats.RNG) (vecmath.Point, int) {
	if m.NoiseFrac > 0 && (len(m.Clusters) == 0 || rng.Float64() < m.NoiseFrac) {
		return rng.UniformPointBox(m.NoiseLo, m.NoiseHi), dataset.Noise
	}
	c := m.pickCluster(rng)
	return c.Sample(rng), c.Label
}

func (m *Mixture) pickCluster(rng *stats.RNG) *Cluster {
	var total float64
	for _, c := range m.Clusters {
		total += c.Weight
	}
	x := rng.Float64() * total
	for _, c := range m.Clusters {
		x -= c.Weight
		if x < 0 {
			return c
		}
	}
	return m.Clusters[len(m.Clusters)-1]
}

// Populate inserts n samples into db.
func (m *Mixture) Populate(db *dataset.DB, rng *stats.RNG, n int) error {
	if db.Dim() != m.Dim {
		return errors.New("synth: database dimensionality mismatch")
	}
	for i := 0; i < n; i++ {
		p, label := m.Sample(rng)
		if _, err := db.Insert(p, label); err != nil {
			return err
		}
	}
	return nil
}

// ClusterByLabel returns the mixture component with the given label, or nil.
func (m *Mixture) ClusterByLabel(label int) *Cluster {
	for _, c := range m.Clusters {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// RemoveCluster deletes the component with the given label from the mixture
// and reports whether it was present.
func (m *Mixture) RemoveCluster(label int) bool {
	for i, c := range m.Clusters {
		if c.Label == label {
			m.Clusters = append(m.Clusters[:i], m.Clusters[i+1:]...)
			return true
		}
	}
	return false
}

// SpreadCenters places k cluster centers in the box [lo,hi]^d with a
// minimum pairwise separation of sep, by rejection sampling with a bounded
// number of attempts (falling back to the best candidate found). Guaranteed
// to return k centers.
func SpreadCenters(rng *stats.RNG, d, k int, lo, hi, sep float64) []vecmath.Point {
	centers := make([]vecmath.Point, 0, k)
	for len(centers) < k {
		var best vecmath.Point
		bestMin := -1.0
		for attempt := 0; attempt < 64; attempt++ {
			cand := rng.UniformPoint(d, lo, hi)
			minD := 1e308
			for _, c := range centers {
				//lint:allow rawdist generator setup; center placement is not clustering work
				if dd := vecmath.Distance(cand, c); dd < minD {
					minD = dd
				}
			}
			if len(centers) == 0 || minD >= sep {
				best = cand
				break
			}
			if minD > bestMin {
				bestMin, best = minD, cand
			}
		}
		centers = append(centers, best)
	}
	return centers
}
