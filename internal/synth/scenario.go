package synth

import (
	"errors"
	"fmt"
	"math"

	"incbubbles/internal/dataset"
	"incbubbles/internal/stats"
	"incbubbles/internal/vecmath"
)

// Kind enumerates the dynamic scenarios of the paper's evaluation (§5).
type Kind int

const (
	// Random: points are inserted and deleted randomly according to the
	// (static) data distribution.
	Random Kind = iota
	// Appear: a new cluster appears over time inside the populated region.
	Appear
	// ExtremeAppear: a new cluster appears in a completely new region that
	// contains no previous points, not even noise.
	ExtremeAppear
	// Disappear: an old cluster disappears over time.
	Disappear
	// Gradmove: one cluster gradually moves across the space.
	Gradmove
	// Complex: random churn plus simultaneous appear, disappear and move.
	Complex
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case Random:
		return "random"
	case Appear:
		return "appear"
	case ExtremeAppear:
		return "extappear"
	case Disappear:
		return "disappear"
	case Gradmove:
		return "gradmove"
	case Complex:
		return "complex"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all scenario kinds in presentation order.
func Kinds() []Kind {
	return []Kind{Random, Appear, ExtremeAppear, Disappear, Gradmove, Complex}
}

// Config parameterises a scenario. Zero fields take the documented defaults
// so that Config{Kind: Appear, Dim: 2} is a complete specification.
type Config struct {
	Kind           Kind
	Dim            int     // dimensionality (default 2)
	InitialPoints  int     // initial database size (default 10000)
	BaseClusters   int     // number of initial clusters (default 4)
	NoiseFrac      float64 // uniform background noise fraction (default 0.05)
	UpdateFraction float64 // fraction of |DB| updated per batch, inserts+deletes (default 0.10)
	Batches        int     // batches over which scenario events complete (default 10)
	Std            float64 // cluster standard deviation (default BoxSize/40)
	BoxSize        float64 // data space is [0,BoxSize]^d (default 100)
	Seed           int64   // RNG seed (default 1)
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 2
	}
	if c.InitialPoints == 0 {
		c.InitialPoints = 10000
	}
	if c.BaseClusters == 0 {
		c.BaseClusters = 4
	}
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.05
	}
	if c.UpdateFraction == 0 {
		c.UpdateFraction = 0.10
	}
	if c.Batches == 0 {
		c.Batches = 10
	}
	if c.BoxSize == 0 {
		c.BoxSize = 100
	}
	if c.Std == 0 {
		c.Std = c.BoxSize / 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Dim < 1 {
		return errors.New("synth: dimension must be positive")
	}
	if c.InitialPoints < 10 {
		return errors.New("synth: need at least 10 initial points")
	}
	if c.BaseClusters < 1 {
		return errors.New("synth: need at least one base cluster")
	}
	if c.NoiseFrac < 0 || c.NoiseFrac >= 1 {
		return errors.New("synth: noise fraction out of [0,1)")
	}
	if c.UpdateFraction <= 0 || c.UpdateFraction > 1 {
		return errors.New("synth: update fraction out of (0,1]")
	}
	if c.Batches < 1 {
		return errors.New("synth: need at least one batch")
	}
	return nil
}

// Scenario owns a dynamic database and emits batches of updates realising
// its configured dynamics. The same Scenario instance (same seed) always
// produces the same update stream, so competing summarization schemes can
// be replayed against identical histories via DB().Clone() snapshots or by
// consuming the applied batches.
type Scenario struct {
	cfg  Config
	rng  *stats.RNG
	mix  *Mixture
	db   *dataset.DB
	step int

	appear       *Cluster // growing cluster, nil when absent or done
	appearTarget int      // size at which growth stops
	disappearLbl int      // label being drained, or noLabel
	moving       *Cluster // cluster being translated, nil when absent
	moveVel      vecmath.Point
	moveLeft     int // batches of movement remaining
}

const noLabel = math.MinInt

// NewScenario builds the initial database and dynamics for cfg.
func NewScenario(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	db, err := dataset.New(cfg.Dim)
	if err != nil {
		return nil, err
	}
	sep := cfg.BoxSize / float64(cfg.BaseClusters)
	centers := SpreadCenters(rng, cfg.Dim, cfg.BaseClusters, cfg.BoxSize*0.1, cfg.BoxSize*0.9, sep)
	mix := &Mixture{
		Dim:       cfg.Dim,
		NoiseFrac: cfg.NoiseFrac,
		NoiseLo:   uniformPoint(cfg.Dim, 0),
		NoiseHi:   uniformPoint(cfg.Dim, cfg.BoxSize),
	}
	for i, c := range centers {
		mix.Clusters = append(mix.Clusters, &Cluster{Label: i, Center: c, Std: cfg.Std, Weight: 1})
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	s := &Scenario{cfg: cfg, rng: rng, mix: mix, db: db, disappearLbl: noLabel}
	if err := mix.Populate(db, rng, cfg.InitialPoints); err != nil {
		return nil, err
	}
	s.configureEvents()
	return s, nil
}

func uniformPoint(d int, v float64) vecmath.Point {
	p := make(vecmath.Point, d)
	for i := range p {
		p[i] = v
	}
	return p
}

// configureEvents sets up the appear/disappear/move machinery per Kind.
func (s *Scenario) configureEvents() {
	cfg := s.cfg
	clusterShare := int(float64(cfg.InitialPoints) * (1 - cfg.NoiseFrac) / float64(cfg.BaseClusters))
	newLabel := cfg.BaseClusters

	makeAppear := func(extreme bool) {
		var center vecmath.Point
		if extreme {
			// A region guaranteed to contain no previous points: outside the
			// noise box on every axis.
			center = uniformPoint(cfg.Dim, cfg.BoxSize*1.5)
		} else {
			center = s.rng.UniformPoint(cfg.Dim, cfg.BoxSize*0.1, cfg.BoxSize*0.9)
		}
		s.appear = &Cluster{Label: newLabel, Center: center, Std: cfg.Std, Weight: 1}
		s.appearTarget = clusterShare
	}

	switch cfg.Kind {
	case Random:
		// no events: pure churn
	case Appear:
		makeAppear(false)
	case ExtremeAppear:
		makeAppear(true)
	case Disappear:
		s.disappearLbl = 0
		s.mix.RemoveCluster(0) // no fresh points for the dying cluster
	case Gradmove:
		s.setupMove(0)
	case Complex:
		makeAppear(false)
		if cfg.BaseClusters >= 2 {
			s.disappearLbl = 0
			s.mix.RemoveCluster(0)
		}
		if cfg.BaseClusters >= 2 {
			s.setupMove(1)
		} else {
			s.setupMove(0)
		}
	}
}

func (s *Scenario) setupMove(label int) {
	c := s.mix.ClusterByLabel(label)
	if c == nil {
		return
	}
	// Translate the cluster by ~40% of the box diagonal over all batches,
	// reflecting direction to stay inside the box.
	target := make(vecmath.Point, s.cfg.Dim)
	for j := range target {
		shift := s.cfg.BoxSize * 0.4
		if c.Center[j]+shift > s.cfg.BoxSize*0.9 {
			shift = -shift
		}
		target[j] = c.Center[j] + shift
	}
	s.moving = c
	s.moveVel = target.Sub(c.Center).Scale(1 / float64(s.cfg.Batches))
	s.moveLeft = s.cfg.Batches
}

// DB returns the scenario's live database. Callers must treat it as
// read-only; updates flow exclusively through NextBatch.
func (s *Scenario) DB() *dataset.DB { return s.db }

// Mixture returns the current ground-truth mixture (inserts are drawn from
// it). The returned value mutates as the scenario evolves.
func (s *Scenario) Mixture() *Mixture { return s.mix }

// Step returns the number of batches generated so far.
func (s *Scenario) Step() int { return s.step }

// Config returns the (defaulted) configuration.
func (s *Scenario) Config() Config { return s.cfg }

// AppearLabel returns the ground-truth label of the appearing cluster and
// whether the scenario has one.
func (s *Scenario) AppearLabel() (int, bool) {
	if s.cfg.Kind == Appear || s.cfg.Kind == ExtremeAppear || s.cfg.Kind == Complex {
		return s.cfg.BaseClusters, true
	}
	return 0, false
}

// NextBatch generates one batch of updates — equal numbers of insertions
// and deletions totalling UpdateFraction·|DB| — applies it to the owned
// database, and returns the applied batch (inserts carry their assigned
// IDs, deletes carry the removed coordinates).
func (s *Scenario) NextBatch() (dataset.Batch, error) {
	n := s.db.Len()
	half := int(s.cfg.UpdateFraction*float64(n)/2 + 0.5)
	victims := s.pickVictims(half)
	inserts := s.makeInserts(half)

	batch := make(dataset.Batch, 0, len(victims)+len(inserts))
	for _, id := range victims {
		batch = append(batch, dataset.Update{Op: dataset.OpDelete, ID: id})
	}
	batch = append(batch, inserts...)
	applied, err := batch.Apply(s.db)
	if err != nil {
		return applied, err
	}
	s.advanceEvents()
	s.step++
	return applied, nil
}

// pickVictims selects distinct deletion victims according to the active
// events: the disappearing cluster is drained on schedule, the moving
// cluster sheds trailing points, and the remainder is uniform churn that
// spares the still-growing appearing cluster.
func (s *Scenario) pickVictims(count int) []dataset.PointID {
	chosen := make(map[dataset.PointID]bool, count)
	out := make([]dataset.PointID, 0, count)
	take := func(ids []dataset.PointID, k int) {
		if k > len(ids) {
			k = len(ids)
		}
		for _, i := range s.rng.SampleWithoutReplacement(len(ids), k) {
			if !chosen[ids[i]] {
				chosen[ids[i]] = true
				out = append(out, ids[i])
			}
		}
	}

	remainingBatches := s.cfg.Batches - s.step
	if remainingBatches < 1 {
		remainingBatches = 1
	}

	if s.disappearLbl != noLabel {
		ids := s.idsWithLabel(s.disappearLbl)
		if len(ids) == 0 {
			s.disappearLbl = noLabel
		} else {
			quota := (len(ids) + remainingBatches - 1) / remainingBatches
			if quota > count/2 && count/2 > 0 {
				quota = count / 2
			}
			take(ids, quota)
		}
	}
	if s.moving != nil && s.moveLeft > 0 {
		ids := s.idsWithLabel(s.moving.Label)
		quota := (len(ids) + s.moveLeft - 1) / s.moveLeft
		budget := count - len(out)
		if quota > budget/2 && budget/2 > 0 {
			quota = budget / 2
		}
		take(ids, quota)
	}

	// Uniform churn for the remainder, sparing the growing cluster.
	spareLabel := noLabel
	if s.appear != nil {
		spareLabel = s.appear.Label
	}
	guard := 0
	for len(out) < count && guard < 50*count+100 {
		guard++
		id, err := s.db.RandomID(s.rng)
		if err != nil {
			break
		}
		if chosen[id] {
			continue
		}
		rec, err := s.db.Get(id)
		if err != nil {
			continue
		}
		if rec.Label == spareLabel {
			continue
		}
		chosen[id] = true
		out = append(out, id)
	}
	return out
}

// makeInserts builds the insertion half of a batch: growth quota for the
// appearing cluster, replacement points for the moving cluster at its new
// position, and mixture churn for the rest.
func (s *Scenario) makeInserts(count int) []dataset.Update {
	out := make([]dataset.Update, 0, count)
	add := func(p vecmath.Point, label int) {
		out = append(out, dataset.Update{Op: dataset.OpInsert, P: p, Label: label})
	}

	if s.appear != nil {
		have := len(s.idsWithLabel(s.appear.Label))
		remainingBatches := s.cfg.Batches - s.step
		if remainingBatches < 1 {
			remainingBatches = 1
		}
		quota := (s.appearTarget - have + remainingBatches - 1) / remainingBatches
		if quota < 0 {
			quota = 0
		}
		if quota > count/2 {
			quota = count / 2
		}
		for i := 0; i < quota; i++ {
			add(s.appear.Sample(s.rng), s.appear.Label)
		}
		if have+quota >= s.appearTarget {
			// Growth finished: the new cluster joins the mixture and from now
			// on participates in ordinary churn.
			s.mix.Clusters = append(s.mix.Clusters, s.appear)
			s.appear = nil
		}
	}
	if s.moving != nil && s.moveLeft > 0 {
		// Points inserted at the centre as it will be after this batch.
		next := s.moving.Center.Add(s.moveVel)
		budget := count - len(out)
		quota := budget / 2
		ids := len(s.idsWithLabel(s.moving.Label))
		perBatch := (ids + s.moveLeft - 1) / s.moveLeft
		if perBatch < quota {
			quota = perBatch
		}
		for i := 0; i < quota; i++ {
			add(s.rng.GaussianPoint(next, s.moving.Std), s.moving.Label)
		}
	}
	for len(out) < count {
		p, label := s.mix.Sample(s.rng)
		add(p, label)
	}
	return out
}

// advanceEvents moves the moving cluster's centre one step.
func (s *Scenario) advanceEvents() {
	if s.moving != nil && s.moveLeft > 0 {
		s.moving.Center = s.moving.Center.Add(s.moveVel)
		s.moveLeft--
	}
}

func (s *Scenario) idsWithLabel(label int) []dataset.PointID {
	var ids []dataset.PointID
	s.db.ForEach(func(r dataset.Record) {
		if r.Label == label {
			ids = append(ids, r.ID)
		}
	})
	return ids
}

// Run advances the scenario by n batches, returning the applied batches.
func (s *Scenario) Run(n int) ([]dataset.Batch, error) {
	out := make([]dataset.Batch, 0, n)
	for i := 0; i < n; i++ {
		b, err := s.NextBatch()
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}
