package synth

import (
	"testing"

	"incbubbles/internal/dataset"
	"incbubbles/internal/stats"
	"incbubbles/internal/vecmath"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Random: "random", Appear: "appear", ExtremeAppear: "extappear",
		Disappear: "disappear", Gradmove: "gradmove", Complex: "complex",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String()=%q want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty string")
	}
	if len(Kinds()) != 6 {
		t.Errorf("Kinds()=%v", Kinds())
	}
}

func TestMixtureValidate(t *testing.T) {
	good := &Mixture{
		Dim:       2,
		Clusters:  []*Cluster{{Label: 0, Center: vecmath.Point{0, 0}, Std: 1, Weight: 1}},
		NoiseFrac: 0.1,
		NoiseLo:   vecmath.Point{0, 0},
		NoiseHi:   vecmath.Point{10, 10},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid mixture rejected: %v", err)
	}
	bad := []*Mixture{
		{Dim: 0},
		{Dim: 2, NoiseFrac: -0.1},
		{Dim: 2, NoiseFrac: 0.5, NoiseLo: vecmath.Point{0}, NoiseHi: vecmath.Point{1}},
		{Dim: 2, NoiseFrac: 0.5, NoiseLo: vecmath.Point{0, 0}, NoiseHi: vecmath.Point{0, 1}},
		{Dim: 2},
		{Dim: 2, Clusters: []*Cluster{{Center: vecmath.Point{0}, Std: 1, Weight: 1}}},
		{Dim: 1, Clusters: []*Cluster{{Center: vecmath.Point{0}, Std: 0, Weight: 1}}},
		{Dim: 1, Clusters: []*Cluster{{Center: vecmath.Point{0}, Std: 1, Weight: -1}}},
		{Dim: 1, Clusters: []*Cluster{{Center: vecmath.Point{0}, Std: 1, Weight: 0}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mixture %d accepted", i)
		}
	}
}

func TestMixtureSampleLabels(t *testing.T) {
	m := &Mixture{
		Dim: 2,
		Clusters: []*Cluster{
			{Label: 0, Center: vecmath.Point{0, 0}, Std: 1, Weight: 3},
			{Label: 1, Center: vecmath.Point{50, 50}, Std: 1, Weight: 1},
		},
		NoiseFrac: 0.2,
		NoiseLo:   vecmath.Point{0, 0},
		NoiseHi:   vecmath.Point{60, 60},
	}
	rng := stats.NewRNG(2)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		_, label := m.Sample(rng)
		counts[label]++
	}
	// ~20% noise, rest split 3:1.
	if counts[dataset.Noise] < 3000 || counts[dataset.Noise] > 5000 {
		t.Errorf("noise count=%d", counts[dataset.Noise])
	}
	if counts[0] < 2*counts[1] {
		t.Errorf("weights not respected: %v", counts)
	}
}

func TestMixturePopulate(t *testing.T) {
	m := &Mixture{
		Dim:      2,
		Clusters: []*Cluster{{Label: 7, Center: vecmath.Point{5, 5}, Std: 0.5, Weight: 1}},
	}
	db := dataset.MustNew(2)
	if err := m.Populate(db, stats.NewRNG(1), 100); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 100 {
		t.Fatalf("Len=%d", db.Len())
	}
	if db.LabelHistogram()[7] != 100 {
		t.Fatalf("hist=%v", db.LabelHistogram())
	}
	bad := dataset.MustNew(3)
	if err := m.Populate(bad, stats.NewRNG(1), 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestClusterByLabelAndRemove(t *testing.T) {
	m := &Mixture{Dim: 1, Clusters: []*Cluster{
		{Label: 0, Center: vecmath.Point{0}, Std: 1, Weight: 1},
		{Label: 1, Center: vecmath.Point{5}, Std: 1, Weight: 1},
	}}
	if m.ClusterByLabel(1) == nil || m.ClusterByLabel(2) != nil {
		t.Fatal("ClusterByLabel wrong")
	}
	if !m.RemoveCluster(0) || m.RemoveCluster(0) {
		t.Fatal("RemoveCluster wrong")
	}
	if len(m.Clusters) != 1 || m.Clusters[0].Label != 1 {
		t.Fatalf("Clusters=%v", m.Clusters)
	}
}

func TestSpreadCenters(t *testing.T) {
	rng := stats.NewRNG(3)
	cs := SpreadCenters(rng, 2, 5, 0, 100, 20)
	if len(cs) != 5 {
		t.Fatalf("len=%d", len(cs))
	}
	for i, c := range cs {
		if c.Dim() != 2 {
			t.Fatalf("center %d dim=%d", i, c.Dim())
		}
		for _, v := range c {
			if v < 0 || v >= 100 {
				t.Fatalf("center out of box: %v", c)
			}
		}
	}
	// Impossible separation still returns k centers (best effort).
	cs = SpreadCenters(rng, 2, 30, 0, 10, 1000)
	if len(cs) != 30 {
		t.Fatalf("best-effort len=%d", len(cs))
	}
}

func TestScenarioDefaultsAndValidation(t *testing.T) {
	s, err := NewScenario(Config{Kind: Random})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Dim != 2 || cfg.InitialPoints != 10000 || cfg.Batches != 10 {
		t.Fatalf("defaults=%+v", cfg)
	}
	if s.DB().Len() != 10000 {
		t.Fatalf("initial Len=%d", s.DB().Len())
	}
	bad := []Config{
		{Kind: Random, Dim: -1},
		{Kind: Random, InitialPoints: 5},
		{Kind: Random, BaseClusters: -1},
		{Kind: Random, NoiseFrac: 1.5},
		{Kind: Random, UpdateFraction: 2},
		{Kind: Random, Batches: -1},
	}
	for i, c := range bad {
		if _, err := NewScenario(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestScenarioReproducible(t *testing.T) {
	mk := func() []dataset.Record {
		s, err := NewScenario(Config{Kind: Complex, InitialPoints: 1000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(3); err != nil {
			t.Fatal(err)
		}
		return s.DB().Snapshot()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	am := map[dataset.PointID]dataset.Record{}
	for _, r := range a {
		am[r.ID] = r
	}
	for _, r := range b {
		if !am[r.ID].P.Equal(r.P) || am[r.ID].Label != r.Label {
			t.Fatalf("divergence at id %d", r.ID)
		}
	}
}

func TestScenarioBatchShape(t *testing.T) {
	s, err := NewScenario(Config{Kind: Random, InitialPoints: 2000, UpdateFraction: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n0 := s.DB().Len()
	b, err := s.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	ins, del := b.Counts()
	// Equal insert/delete volume, each half of 10% of the database.
	if ins != del {
		t.Fatalf("ins=%d del=%d", ins, del)
	}
	if ins < n0/25 || ins > n0/15 {
		t.Fatalf("batch half=%d for n=%d", ins, n0)
	}
	if s.DB().Len() != n0 {
		t.Fatalf("database size changed under equal churn: %d -> %d", n0, s.DB().Len())
	}
	// Applied batch annotations present.
	for _, u := range b {
		if u.Op == dataset.OpDelete && u.P == nil {
			t.Fatal("delete not annotated with coordinates")
		}
	}
	if s.Step() != 1 {
		t.Fatalf("Step=%d", s.Step())
	}
}

func TestAppearScenarioGrowsCluster(t *testing.T) {
	s, err := NewScenario(Config{Kind: Appear, InitialPoints: 3000, Batches: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	label, ok := s.AppearLabel()
	if !ok {
		t.Fatal("Appear scenario without appear label")
	}
	if got := s.DB().LabelHistogram()[label]; got != 0 {
		t.Fatalf("appear cluster pre-populated: %d", got)
	}
	if _, err := s.Run(8); err != nil {
		t.Fatal(err)
	}
	grown := s.DB().LabelHistogram()[label]
	points := 3000.0
	share := int(points * (1 - 0.05) / 4)
	if grown < share/2 {
		t.Fatalf("appear cluster only reached %d of ~%d", grown, share)
	}
}

func TestExtremeAppearRegionEmpty(t *testing.T) {
	s, err := NewScenario(Config{Kind: ExtremeAppear, InitialPoints: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Before any batches, no point may lie outside the noise box (the
	// appear region must contain no previous points, not even noise).
	box := s.Config().BoxSize
	s.DB().ForEach(func(r dataset.Record) {
		for _, v := range r.P {
			if v > box*1.25 {
				t.Fatalf("initial point already in appear region: %v", r.P)
			}
		}
	})
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	label, _ := s.AppearLabel()
	if s.DB().LabelHistogram()[label] == 0 {
		t.Fatal("extreme-appear cluster never materialised")
	}
}

func TestDisappearScenarioDrainsCluster(t *testing.T) {
	s, err := NewScenario(Config{Kind: Disappear, InitialPoints: 3000, Batches: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before := s.DB().LabelHistogram()[0]
	if before == 0 {
		t.Fatal("cluster 0 empty at start")
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	after := s.DB().LabelHistogram()[0]
	if after > before/10 {
		t.Fatalf("cluster 0 not drained: %d -> %d", before, after)
	}
}

func TestGradmoveScenarioMovesCentroid(t *testing.T) {
	s, err := NewScenario(Config{Kind: Gradmove, InitialPoints: 3000, Batches: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	centroid := func() vecmath.Point {
		var pts []vecmath.Point
		s.DB().ForEach(func(r dataset.Record) {
			if r.Label == 0 {
				pts = append(pts, r.P)
			}
		})
		return vecmath.Mean(pts)
	}
	c0 := centroid()
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	c1 := centroid()
	moved := vecmath.Distance(c0, c1)
	if moved < s.Config().BoxSize*0.15 {
		t.Fatalf("cluster barely moved: %v", moved)
	}
	// Cluster size should be roughly preserved.
	n := s.DB().LabelHistogram()[0]
	if n < 100 {
		t.Fatalf("moving cluster lost its points: %d", n)
	}
}

func TestComplexScenarioAllEvents(t *testing.T) {
	s, err := NewScenario(Config{Kind: Complex, InitialPoints: 4000, Batches: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	before0 := s.DB().LabelHistogram()[0]
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	h := s.DB().LabelHistogram()
	label, _ := s.AppearLabel()
	if h[label] == 0 {
		t.Error("complex: appear cluster missing")
	}
	if h[0] > before0/5 {
		t.Errorf("complex: disappear cluster not drained: %d -> %d", before0, h[0])
	}
	if h[1] == 0 {
		t.Error("complex: moving cluster vanished")
	}
}

func TestScenarioHighDim(t *testing.T) {
	for _, d := range []int{5, 10, 20} {
		s, err := NewScenario(Config{Kind: Complex, Dim: d, InitialPoints: 1000, Seed: 11})
		if err != nil {
			t.Fatalf("dim %d: %v", d, err)
		}
		if _, err := s.Run(2); err != nil {
			t.Fatalf("dim %d: %v", d, err)
		}
		if s.DB().Dim() != d {
			t.Fatalf("dim %d: db dim %d", d, s.DB().Dim())
		}
	}
}
