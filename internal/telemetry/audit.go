package telemetry

import (
	"fmt"
	"math"

	"incbubbles/internal/bubble"
	"incbubbles/internal/vecmath"
)

// Code names one class of audited invariant. The codes map one-to-one onto
// the paper's sufficient-statistics contracts: Definition 1 requires a
// bubble's (n, LS, SS) to describe a realizable point set (non-negative
// variance), Definition 2 requires the β distribution to normalize over
// the database, and Lemma 1 pruning is only sound against a symmetric,
// exact seed distance matrix.
type Code string

const (
	// CodeCountMismatch: Σ nᵢ over all bubbles differs from the database
	// size N (Figure 3 increments/decrements lost or duplicated).
	CodeCountMismatch Code = "count-mismatch"
	// CodeNegativeCount: a bubble reports n < 0.
	CodeNegativeCount Code = "negative-count"
	// CodeNonFinite: a seed coordinate, LS coordinate, or SS is NaN/Inf.
	CodeNonFinite Code = "non-finite"
	// CodeNegativeVariance: SS < ‖LS‖²/n beyond tolerance — the statistics
	// describe no realizable point set (Definition 1).
	CodeNegativeVariance Code = "negative-variance"
	// CodeEmptyResidue: an empty bubble (n = 0) retains nonzero LS or SS.
	CodeEmptyResidue Code = "empty-residue"
	// CodeBetaSum: Σ βᵢ differs from 1 beyond tolerance (Definition 2).
	CodeBetaSum Code = "beta-sum"
	// CodeSeedMatrix: the cached seed distance matrix is asymmetric, has a
	// nonzero diagonal, or disagrees with the recomputed seed distances —
	// any of which silently breaks Lemma 1 pruning.
	CodeSeedMatrix Code = "seed-matrix"
	// CodeOwnership: the point→bubble ownership bookkeeping disagrees with
	// the per-bubble member sets or counts.
	CodeOwnership Code = "ownership"
	// CodeDimension: a bubble's seed or LS has the wrong dimensionality.
	CodeDimension Code = "dimension"
	// CodeInternal: the auditor itself recovered from a panic while
	// inspecting a corrupt set; Detail carries the panic value.
	CodeInternal Code = "internal"
)

// Violation is one detected invariant breach. Bubble is the offending
// bubble index, or -1 for set-level violations.
type Violation struct {
	Code   Code   `json:"code"`
	Bubble int    `json:"bubble"`
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Bubble < 0 {
		return fmt.Sprintf("%s: %s", v.Code, v.Detail)
	}
	return fmt.Sprintf("%s (bubble %d): %s", v.Code, v.Bubble, v.Detail)
}

// AuditOptions tunes an audit pass.
type AuditOptions struct {
	// RelTol is the relative tolerance for floating-point comparisons
	// (sufficient statistics drift as points are absorbed and released in
	// different orders). ≤0 selects 1e-6.
	RelTol float64
	// SkipSeedMatrix disables the O(k²·d) recomputation of the seed
	// distance matrix; the symmetry and diagonal checks still run.
	SkipSeedMatrix bool
	// MaxViolations bounds the report so a thoroughly corrupt set cannot
	// produce an unbounded slice. ≤0 selects 64.
	MaxViolations int
}

const (
	defaultRelTol        = 1e-6
	defaultMaxViolations = 64
)

// Audit validates the paper's sufficient-statistics contracts over set:
// per-bubble realizability (SS ≥ ‖LS‖²/n, finite statistics, empty bubbles
// fully zeroed), Σnᵢ = totalPoints and Σβᵢ = 1, ownership-map consistency,
// and the symmetry and exactness of the seed distance matrix Lemma 1
// pruning relies on. totalPoints is the current database size N.
//
// Audit returns structured violations instead of panicking — even on
// deliberately corrupted statistics — so a production system can degrade
// gracefully (alert, rebuild, shed load) rather than crash. It performs no
// counted distance computations, draws no randomness, and mutates nothing,
// so auditing never perturbs experiment results or determinism contracts.
func Audit(set *bubble.Set, totalPoints int) []Violation {
	return AuditWith(set, totalPoints, AuditOptions{})
}

// AuditWith is Audit with explicit options.
func AuditWith(set *bubble.Set, totalPoints int, opts AuditOptions) (vs []Violation) {
	defer func() {
		if r := recover(); r != nil {
			vs = append(vs, Violation{Code: CodeInternal, Bubble: -1, Detail: fmt.Sprint(r)})
		}
	}()
	if opts.RelTol <= 0 {
		opts.RelTol = defaultRelTol
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = defaultMaxViolations
	}
	if set == nil {
		return []Violation{{Code: CodeInternal, Bubble: -1, Detail: "nil bubble set"}}
	}
	a := &auditor{opts: opts}
	a.bubbles(set)
	a.totals(set, totalPoints)
	a.ownership(set)
	a.seedMatrix(set)
	return a.vs
}

type auditor struct {
	opts AuditOptions
	vs   []Violation
	full bool
}

func (a *auditor) add(code Code, bubbleIdx int, format string, args ...any) {
	if a.full {
		return
	}
	if len(a.vs) >= a.opts.MaxViolations {
		a.full = true
		a.vs = append(a.vs, Violation{Code: CodeInternal, Bubble: -1,
			Detail: fmt.Sprintf("report truncated at %d violations", a.opts.MaxViolations)})
		return
	}
	a.vs = append(a.vs, Violation{Code: code, Bubble: bubbleIdx, Detail: fmt.Sprintf(format, args...)})
}

// bubbles checks every bubble's (n, LS, SS) for Definition 1
// realizability.
func (a *auditor) bubbles(set *bubble.Set) {
	dim := set.Dim()
	for i, b := range set.Bubbles() {
		n := b.N()
		ls := b.LS()
		ss := b.SS()
		if n < 0 {
			a.add(CodeNegativeCount, i, "n=%d", n)
			continue
		}
		if b.Seed().Dim() != dim || ls.Dim() != dim {
			a.add(CodeDimension, i, "seed dim %d, LS dim %d, want %d", b.Seed().Dim(), ls.Dim(), dim)
			continue
		}
		if !b.Seed().IsFinite() || !ls.IsFinite() || math.IsNaN(ss) || math.IsInf(ss, 0) {
			a.add(CodeNonFinite, i, "seed=%v ls=%v ss=%v", b.Seed(), ls, ss)
			continue
		}
		if n == 0 {
			if ss != 0 || ls.Norm2() != 0 {
				a.add(CodeEmptyResidue, i, "n=0 but ls=%v ss=%v", ls, ss)
			}
			continue
		}
		// Cauchy–Schwarz lower bound: SS ≥ ‖LS‖²/n for any real point set.
		lower := ls.Norm2() / float64(n)
		tol := a.opts.RelTol * (1 + math.Abs(ss) + lower)
		if ss < lower-tol {
			a.add(CodeNegativeVariance, i, "ss=%g < |ls|²/n=%g (n=%d)", ss, lower, n)
		}
	}
}

// totals checks Σnᵢ = N and Σβᵢ = 1.
func (a *auditor) totals(set *bubble.Set, totalPoints int) {
	var sumN int
	for _, b := range set.Bubbles() {
		if b.N() > 0 {
			sumN += b.N()
		}
	}
	if sumN != totalPoints {
		a.add(CodeCountMismatch, -1, "Σn=%d but database holds %d points", sumN, totalPoints)
	}
	if totalPoints <= 0 {
		return
	}
	var sumBeta float64
	for _, beta := range set.Betas(totalPoints) {
		sumBeta += beta
	}
	if math.Abs(sumBeta-1) > a.opts.RelTol*float64(1+set.Len()) {
		a.add(CodeBetaSum, -1, "Σβ=%g, want 1", sumBeta)
	}
}

// ownership checks the point→bubble map against per-bubble members/counts.
func (a *auditor) ownership(set *bubble.Set) {
	if err := set.CheckInvariants(); err != nil {
		a.add(CodeOwnership, -1, "%v", err)
	}
}

// seedMatrix checks the cached Lemma 1 distances: zero diagonal,
// symmetry, finiteness, and (unless skipped) agreement with recomputed
// seed distances. Entries are read through PeekSeedDistance, which never
// computes, and recomputation uses the uncounted vecmath.Distance — so an
// audit never shows up in the paper's Figure 10/11 accounting even under
// the lazy fastpair index, whose invalidated (uncached) entries are
// simply skipped.
func (a *auditor) seedMatrix(set *bubble.Set) {
	if !set.Options().UseTriangleInequality {
		return
	}
	k := set.Len()
	dim := set.Dim()
	for i := 0; i < k; i++ {
		if d, ok := set.PeekSeedDistance(i, i); ok && d != 0 {
			a.add(CodeSeedMatrix, i, "diagonal entry %g, want 0", d)
		}
		for j := i + 1; j < k; j++ {
			dij, okij := set.PeekSeedDistance(i, j)
			dji, okji := set.PeekSeedDistance(j, i)
			if okij != okji {
				a.add(CodeSeedMatrix, i, "one-sided cache: (%d,%d) cached=%v but (%d,%d) cached=%v", i, j, okij, j, i, okji)
				continue
			}
			if !okij {
				continue // invalidated and not yet re-queried: nothing cached to audit
			}
			if math.IsNaN(dij) || math.IsInf(dij, 0) || dij < 0 {
				a.add(CodeSeedMatrix, i, "entry (%d,%d)=%g", i, j, dij)
				continue
			}
			//lint:allow floatsafe Lemma 1 caching must be exactly symmetric; any bit difference is the defect being audited
			if dij != dji {
				a.add(CodeSeedMatrix, i, "asymmetric: (%d,%d)=%g vs (%d,%d)=%g", i, j, dij, j, i, dji)
				continue
			}
			if a.opts.SkipSeedMatrix {
				continue
			}
			si, sj := set.Bubble(i).Seed(), set.Bubble(j).Seed()
			if si.Dim() != dim || sj.Dim() != dim {
				continue // already reported as CodeDimension
			}
			//lint:allow rawdist audits recompute uncounted so verification never inflates Figure 10-11 accounting
			actual := vecmath.Distance(si, sj)
			if math.Abs(dij-actual) > a.opts.RelTol*(1+actual) {
				a.add(CodeSeedMatrix, i, "cached (%d,%d)=%g but seeds are %g apart", i, j, dij, actual)
			}
		}
	}
}
