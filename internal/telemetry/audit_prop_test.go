package telemetry_test

import (
	"fmt"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/stats"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/vecmath"
)

// randomBatch builds a random mix of insertions and deletions against db:
// inserts draw from a handful of Gaussian clusters (plus the occasional
// far-away outlier, to provoke over-filled classifications and hence
// merge/split maintenance), deletes pick uniformly among surviving points.
func randomBatch(t *testing.T, rng *stats.RNG, db *dataset.DB, dim, size int) dataset.Batch {
	t.Helper()
	centers := []float64{0, 30, -25}
	var batch dataset.Batch
	for i := 0; i < size; i++ {
		if rng.Float64() < 0.45 && db.Len() > 200 {
			ids, err := db.RandomIDs(rng, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Skip IDs already deleted earlier in this batch: Apply fills
			// coordinates in order, so duplicates would dangle.
			dup := false
			for _, u := range batch {
				if u.Op == dataset.OpDelete && u.ID == ids[0] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			batch = append(batch, dataset.Update{Op: dataset.OpDelete, ID: ids[0]})
			continue
		}
		ci := rng.Intn(len(centers))
		center := make(vecmath.Point, dim)
		for d := range center {
			center[d] = centers[ci]
		}
		spread := 4.0
		if rng.Float64() < 0.05 {
			spread = 60 // outlier: stress the classifier
		}
		batch = append(batch, dataset.Update{
			Op:    dataset.OpInsert,
			P:     rng.GaussianPoint(center, spread),
			Label: ci,
		})
	}
	return batch
}

// TestAuditPropertyRandomBatches is the property harness: across seeds,
// dimensionalities, worker counts and maintenance configurations, random
// insert/delete batch sequences must keep every audited invariant intact —
// the auditor runs inside ApplyBatch after the apply phase, after every
// merge/split round, and after adaptive count changes.
func TestAuditPropertyRandomBatches(t *testing.T) {
	const batches = 6
	for _, dim := range []int{2, 5} {
		for _, seed := range []int64{101, 202, 303} {
			dim, seed := dim, seed
			t.Run(fmt.Sprintf("dim=%d/seed=%d", dim, seed), func(t *testing.T) {
				rng := stats.NewRNG(seed)
				db := dataset.MustNew(dim)
				for i := 0; i < 700; i++ {
					center := make(vecmath.Point, dim)
					for d := range center {
						center[d] = []float64{0, 30, -25}[i%3]
					}
					db.Insert(rng.GaussianPoint(center, 4), i%3)
				}
				sink := telemetry.NewSink()
				s, err := core.New(db, core.Options{
					NumBubbles:            15,
					UseTriangleInequality: true,
					Seed:                  seed + 1,
					Telemetry:             sink,
					Audit:                 true,
					Config: core.Config{
						MaxRounds:     2,
						AdaptiveCount: seed%2 == 0,
						Workers:       int(seed % 3), // 0 (auto), 1 (serial), 2
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				for b := 0; b < batches; b++ {
					batch := randomBatch(t, rng, db, dim, 120)
					batch, err := batch.Apply(db)
					if err != nil {
						t.Fatal(err)
					}
					bs, err := s.ApplyBatch(batch)
					if err != nil {
						t.Fatal(err)
					}
					if bs.AuditViolations != 0 {
						t.Fatalf("batch %d: %d violations: %v",
							b, bs.AuditViolations, s.LastViolations())
					}
				}
				if vs := s.Audit(); len(vs) != 0 {
					t.Fatalf("final audit: %v", vs)
				}
				if got := sink.Counter(telemetry.MetricCoreAuditRuns).Value(); got == 0 {
					t.Fatal("no audit passes recorded")
				}
			})
		}
	}
}
