package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"incbubbles/internal/bubble"
	"incbubbles/internal/dataset"
	"incbubbles/internal/stats"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/vecmath"
)

func buildCleanSet(t *testing.T) (*bubble.Set, int) {
	t.Helper()
	rng := stats.NewRNG(7)
	db := dataset.MustNew(3)
	for i := 0; i < 200; i++ {
		db.Insert(rng.GaussianPoint(vecmath.Point{0, 0, 0}, 3), 0)
	}
	for i := 0; i < 200; i++ {
		db.Insert(rng.GaussianPoint(vecmath.Point{25, 25, 25}, 3), 1)
	}
	set, err := bubble.Build(db, 12, bubble.Options{
		UseTriangleInequality: true,
		TrackMembers:          true,
		RNG:                   stats.NewRNG(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	return set, db.Len()
}

func TestAuditCleanSet(t *testing.T) {
	set, n := buildCleanSet(t)
	if vs := telemetry.Audit(set, n); len(vs) != 0 {
		t.Fatalf("clean set reported violations: %v", vs)
	}
}

// corruptSS round-trips the set through its JSON snapshot, overwriting one
// bubble's SS on the way, and returns the reloaded (corrupt) set. This is
// the only way to inject bad statistics: the live API maintains the
// invariants by construction.
func corruptSS(t *testing.T, set *bubble.Set, bubbleIdx int, ss float64) *bubble.Set {
	t.Helper()
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	bubbles := snap["bubbles"].([]any)
	bubbles[bubbleIdx].(map[string]any)["ss"] = ss
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := bubble.Load(bytes.NewReader(raw), bubble.Options{RNG: stats.NewRNG(9)})
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestAuditDetectsCorruptedSS is the acceptance-criterion test: a
// deliberately corrupted bubble (SS mutated below the Cauchy–Schwarz lower
// bound ‖LS‖²/n) must be reported as a Definition 1 violation.
func TestAuditDetectsCorruptedSS(t *testing.T) {
	set, n := buildCleanSet(t)
	victim := -1
	for i, b := range set.Bubbles() {
		if b.N() > 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no populated bubble to corrupt")
	}
	lower := set.Bubble(victim).LS().Norm2() / float64(set.Bubble(victim).N())
	corrupt := corruptSS(t, set, victim, lower*0.5)
	vs := telemetry.Audit(corrupt, n)
	if len(vs) == 0 {
		t.Fatal("corrupted SS went undetected")
	}
	found := false
	for _, v := range vs {
		if v.Code == telemetry.CodeNegativeVariance && v.Bubble == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected %s on bubble %d, got %v", telemetry.CodeNegativeVariance, victim, vs)
	}
}

func TestAuditDetectsNonFinite(t *testing.T) {
	set, n := buildCleanSet(t)
	corrupt := corruptSS(t, set, 0, 1)       // make bubble 0 inconsistent…
	corrupt = corruptSS(t, corrupt, 0, -1e9) // …then push SS wildly negative
	vs := telemetry.Audit(corrupt, n)
	if len(vs) == 0 {
		t.Fatal("negative SS undetected")
	}

	// NaN SS must surface as non-finite, not crash the auditor.
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := strings.Replace(buf.String(), `"ss":`, `"ss":null,"x":`, 1)
	nan, err := bubble.Load(strings.NewReader(raw), bubble.Options{})
	if err != nil {
		t.Skipf("mutated snapshot rejected by Load: %v", err)
	}
	_ = telemetry.Audit(nan, n) // must not panic
}

func TestAuditCountMismatch(t *testing.T) {
	set, n := buildCleanSet(t)
	vs := telemetry.Audit(set, n+5)
	found := false
	for _, v := range vs {
		if v.Code == telemetry.CodeCountMismatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong totalPoints not reported: %v", vs)
	}
}

func TestAuditNilSet(t *testing.T) {
	vs := telemetry.Audit(nil, 0)
	if len(vs) != 1 || vs[0].Code != telemetry.CodeInternal {
		t.Fatalf("nil set: %v", vs)
	}
}

func TestAuditTruncatesReport(t *testing.T) {
	set, n := buildCleanSet(t)
	// Corrupt every populated bubble so the violation count exceeds the cap.
	corrupt := set
	for i, b := range set.Bubbles() {
		if b.N() > 1 {
			corrupt = corruptSS(t, corrupt, i, -1)
		}
	}
	vs := telemetry.AuditWith(corrupt, n, telemetry.AuditOptions{MaxViolations: 2})
	if len(vs) != 3 { // 2 violations + truncation notice
		t.Fatalf("got %d violations, want 3 (2 + truncation): %v", len(vs), vs)
	}
	last := vs[len(vs)-1]
	if last.Code != telemetry.CodeInternal || !strings.Contains(last.Detail, "truncated") {
		t.Fatalf("missing truncation notice: %v", last)
	}
}

func TestAuditEmptyResidue(t *testing.T) {
	// Hand-craft a snapshot with an n=0 bubble retaining nonzero SS.
	raw := `{"version":1,"dim":2,"bubbles":[` +
		`{"seed":[0,0],"n":0,"ls":[0,0],"ss":3.5},` +
		`{"seed":[5,5],"n":2,"ls":[10,10],"ss":101}]}`
	set, err := bubble.Load(strings.NewReader(raw), bubble.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := telemetry.Audit(set, 2)
	found := false
	for _, v := range vs {
		if v.Code == telemetry.CodeEmptyResidue && v.Bubble == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("empty residue not reported: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := telemetry.Violation{Code: telemetry.CodeBetaSum, Bubble: -1, Detail: "x"}
	if s := v.String(); !strings.Contains(s, "beta-sum") {
		t.Fatalf("String() = %q", s)
	}
	v.Bubble = 3
	if s := v.String(); !strings.Contains(s, "bubble 3") {
		t.Fatalf("String() = %q", s)
	}
}
