package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"incbubbles/internal/trace"
)

// DebugMux returns the debug HTTP handler the -debug-addr CLI flags
// serve:
//
//	/debug/telemetry   expvar-style JSON snapshot of all metrics
//	/debug/events      JSON array of the retained structured events
//	/debug/pprof/...   the standard net/http/pprof handlers
//
// The handlers read the sink through its own synchronization, so the mux
// can serve while the instrumented system runs.
func DebugMux(sink *Sink) *http.ServeMux {
	return DebugMuxTracer(sink, nil)
}

// maxCaptureSeconds bounds how long /debug/trace?sec=N will block: a
// scrape must not pin a handler goroutine indefinitely.
const maxCaptureSeconds = 60

// DebugMuxTracer is DebugMux plus a span-capture endpoint backed by
// tracer (nil serves empty traces):
//
//	/debug/trace             Chrome trace-event JSON of the retained spans
//	/debug/trace?sec=N       block N seconds (cap 60), return spans started
//	                         in that window; cancelling the request stops
//	                         the wait early and returns what accumulated
//	/debug/trace?format=flame  plain-text flame summary instead of JSON
func DebugMuxTracer(sink *Sink, tracer *trace.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		since := int64(0)
		haveSince := false
		if sec, err := strconv.Atoi(r.URL.Query().Get("sec")); err == nil && sec > 0 {
			if sec > maxCaptureSeconds {
				sec = maxCaptureSeconds
			}
			since = tracer.Now()
			haveSince = true
			select {
			case <-time.After(time.Duration(sec) * time.Second):
			case <-r.Context().Done():
				// Return whatever accumulated before the client gave up.
			}
		}
		var recs []trace.Record
		if haveSince {
			recs = tracer.SnapshotSince(since)
		} else {
			recs = tracer.Snapshot()
		}
		var err error
		if r.URL.Query().Get("format") == "flame" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			err = trace.WriteFlame(w, recs)
		} else {
			w.Header().Set("Content-Type", "application/json")
			err = trace.WriteChrome(w, recs)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap Snapshot
		if sink != nil && sink.Metrics != nil {
			snap = sink.Metrics.Snapshot()
		}
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := []Event{}
		var total, dropped uint64
		if sink != nil && sink.Events != nil {
			events = sink.Events.Events()
			total = sink.Events.Total()
			dropped = sink.Events.Dropped()
		}
		err := json.NewEncoder(w).Encode(struct {
			Total   uint64  `json:"total"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{Total: total, Dropped: dropped, Events: events})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060") in
// a background goroutine and returns the server plus the bound address
// (useful when addr requests port 0). Shut it down with srv.Close.
func ServeDebug(addr string, sink *Sink) (*http.Server, string, error) {
	return ServeDebugTracer(addr, sink, nil)
}

// ServeDebugTracer is ServeDebug with /debug/trace backed by tracer.
func ServeDebugTracer(addr string, sink *Sink, tracer *trace.Tracer) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: DebugMuxTracer(sink, tracer)}
	go func() {
		// ErrServerClosed after Close/Shutdown is the expected exit.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}

// shutdownGrace bounds how long a cancelled debug server waits for
// in-flight scrapes (a long pprof profile, say) before closing their
// connections.
const shutdownGrace = 5 * time.Second

// ServeDebugUntil is ServeDebug tied to a context: when ctx is cancelled
// the server shuts down gracefully, draining in-flight requests for up to
// shutdownGrace before forcing connections closed. The returned done
// channel closes once shutdown has completed, so a CLI can wait for it
// before exiting.
func ServeDebugUntil(ctx context.Context, addr string, sink *Sink) (srv *http.Server, bound string, done <-chan struct{}, err error) {
	return ServeDebugUntilTracer(ctx, addr, sink, nil)
}

// ServeDebugUntilTracer is ServeDebugUntil with /debug/trace backed by
// tracer.
func ServeDebugUntilTracer(ctx context.Context, addr string, sink *Sink, tracer *trace.Tracer) (srv *http.Server, bound string, done <-chan struct{}, err error) {
	srv, bound, err = ServeDebugTracer(addr, sink, tracer)
	if err != nil {
		return nil, "", nil, err
	}
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		<-ctx.Done()
		// The parent ctx is already cancelled here; deriving the drain
		// deadline from it would skip the grace period entirely.
		//lint:allow ctxflow shutdown grace must outlive the cancelled parent ctx by design
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Drain expired: force-close the stragglers.
			_ = srv.Close()
		}
	}()
	return srv, bound, ch, nil
}
