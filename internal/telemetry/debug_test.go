package telemetry_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"incbubbles/internal/telemetry"
	"incbubbles/internal/trace"
)

// get performs a request against the mux and returns status, content type
// and body.
func get(t *testing.T, mux http.Handler, target string) (int, string, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header.Get("Content-Type"), body
}

func TestDebugTelemetryEndpoint(t *testing.T) {
	sink := telemetry.NewSink()
	sink.Counter("distance.computed").Add(42)
	h := sink.Metrics.Histogram("batch_seconds", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	mux := telemetry.DebugMux(sink)

	code, ctype, body := get(t, mux, "/debug/telemetry")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status=%d content-type=%q", code, ctype)
	}
	snap, err := telemetry.ParseSnapshot(body)
	if err != nil {
		t.Fatalf("unparsable snapshot: %v\n%s", err, body)
	}
	if snap.Counters["distance.computed"] != 42 {
		t.Fatalf("counter missing: %+v", snap.Counters)
	}
	hs, ok := snap.Histograms["batch_seconds"]
	if !ok {
		t.Fatalf("histogram missing: %+v", snap.Histograms)
	}
	// All observations sit in bucket (1,2]; every percentile must land there.
	for name, p := range map[string]float64{"p50": hs.P50, "p95": hs.P95, "p99": hs.P99} {
		if p <= 1 || p > 2 {
			t.Errorf("%s = %g, want in (1,2]", name, p)
		}
	}
}

// TestDebugTelemetryNilSink: an empty snapshot, not a panic.
func TestDebugTelemetryNilSink(t *testing.T) {
	mux := telemetry.DebugMux(nil)
	for _, target := range []string{"/debug/telemetry", "/debug/events", "/debug/trace"} {
		if code, _, _ := get(t, mux, target); code != http.StatusOK {
			t.Errorf("%s on nil sink: status %d", target, code)
		}
	}
}

// TestDebugEventsEndpoint drives the ring past a small configured capacity
// and requires the endpoint to report both the retained window and the
// exact drop count.
func TestDebugEventsEndpoint(t *testing.T) {
	sink := telemetry.NewSinkOptions(telemetry.SinkOptions{EventCapacity: 4})
	if got := sink.Events.Capacity(); got != 4 {
		t.Fatalf("configured capacity = %d, want 4", got)
	}
	for i := 0; i < 10; i++ {
		sink.Emit(telemetry.Event{Kind: telemetry.KindBatchApply, Batch: i})
	}
	mux := telemetry.DebugMux(sink)
	code, _, body := get(t, mux, "/debug/events")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var out struct {
		Total   uint64            `json:"total"`
		Dropped uint64            `json:"dropped"`
		Events  []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("%v\n%s", err, body)
	}
	if out.Total != 10 || out.Dropped != 6 || len(out.Events) != 4 {
		t.Fatalf("total=%d dropped=%d retained=%d, want 10/6/4", out.Total, out.Dropped, len(out.Events))
	}
	if out.Events[0].Batch != 6 {
		t.Fatalf("oldest retained batch = %d, want 6 (drops evict oldest)", out.Events[0].Batch)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := trace.New(trace.Options{Capacity: 64})
	parent := tr.Start("core.batch")
	child := parent.Start("core.search")
	child.SetInt("dist_computed", 7)
	child.End()
	parent.End()

	mux := telemetry.DebugMuxTracer(telemetry.NewSink(), tr)
	code, ctype, body := get(t, mux, "/debug/trace")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status=%d content-type=%q", code, ctype)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("invalid chrome trace: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(chrome.TraceEvents))
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
	}

	code, ctype, body = get(t, mux, "/debug/trace?format=flame")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("flame: status=%d content-type=%q", code, ctype)
	}
	if !strings.Contains(string(body), "core.search") {
		t.Fatalf("flame output missing span name:\n%s", body)
	}
}

// TestDebugTraceCaptureWindow: ?sec=N returns only spans started inside
// the window, and a cancelled request returns early with what accumulated.
func TestDebugTraceCaptureWindow(t *testing.T) {
	tr := trace.New(trace.Options{Capacity: 64})
	tr.Start("before.window").End()
	mux := telemetry.DebugMuxTracer(nil, tr)

	done := make(chan []byte, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/debug/trace?sec=30", nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		done <- rec.Body.Bytes()
	}()
	// Give the handler a beat to take its since-stamp, emit a span inside
	// the window, then cancel rather than sitting out the 30 seconds.
	time.Sleep(50 * time.Millisecond)
	tr.Start("inside.window").End()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case body := <-done:
		s := string(body)
		if !strings.Contains(s, "inside.window") {
			t.Fatalf("window span missing:\n%s", s)
		}
		if strings.Contains(s, "before.window") {
			t.Fatalf("pre-window span leaked into capture:\n%s", s)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled capture did not return")
	}
}

// TestDebugConcurrentCaptures hammers every endpoint while spans, events
// and metrics are recorded concurrently; the race detector is the oracle.
func TestDebugConcurrentCaptures(t *testing.T) {
	sink := telemetry.NewSinkOptions(telemetry.SinkOptions{EventCapacity: 32})
	tr := trace.New(trace.Options{Capacity: 128})
	mux := telemetry.DebugMuxTracer(sink, tr)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := tr.Start("core.batch")
			sp.Start("core.search").End()
			sp.End()
			sink.Emit(telemetry.Event{Kind: telemetry.KindBatchApply, Batch: i})
			sink.Counter("distance.computed").Inc()
		}
	}()

	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			targets := []string{
				"/debug/telemetry", "/debug/events",
				"/debug/trace", "/debug/trace?format=flame", "/debug/trace?sec=1",
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			for _, target := range targets {
				req := httptest.NewRequest(http.MethodGet, target, nil).WithContext(ctx)
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d", target, rec.Code)
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestServeDebugUntilTracer boots the real server on a loopback port,
// scrapes it over TCP, then cancels and waits for the drain.
func TestServeDebugUntilTracer(t *testing.T) {
	sink := telemetry.NewSink()
	sink.Counter("distance.computed").Add(7)
	tr := trace.New(trace.Options{Capacity: 16})
	tr.Start("core.batch").End()

	ctx, cancel := context.WithCancel(context.Background())
	_, bound, done, err := telemetry.ServeDebugUntilTracer(ctx, "127.0.0.1:0", sink, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get("http://" + bound + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("scrape failed: status=%d err=%v", res.StatusCode, err)
	}
	if !strings.Contains(string(body), "core.batch") {
		t.Fatalf("span missing from scrape:\n%s", body)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}
