package telemetry

import (
	"fmt"
	"sync"
)

// Kind classifies a maintenance event. The set mirrors the operations the
// paper's evaluation counts: batch absorption (Figure 3), the synchronized
// merge and split of Figure 6 with their reseeds, the §6 adaptive-count
// grow/shrink extension, and audit violations.
type Kind uint8

const (
	// KindBatchApply is one completed ApplyBatch: A=inserted, B=deleted,
	// N=batch length.
	KindBatchApply Kind = iota
	// KindMerge is one donor bubble emptied into its neighbours (Figure 6
	// merge phase): A=donor index, N=points released.
	KindMerge
	// KindSplit is one over-filled bubble split between two fresh seeds:
	// A=donor index, B=over index, N=points redistributed.
	KindSplit
	// KindReseed is one bubble re-seeded at a new position (ResetBubble
	// during a split): A=bubble index.
	KindReseed
	// KindGrow is one bubble added by adaptive growth: A=new index,
	// B=over-filled index it relieves.
	KindGrow
	// KindShrink is one empty bubble removed by adaptive shrink: A=removed
	// index.
	KindShrink
	// KindViolation is one audit pass that found violations: N=violation
	// count.
	KindViolation
	// KindCheckpoint is one durable checkpoint written by the WAL layer:
	// A=batch ordinal covered, N=checkpoint bytes.
	KindCheckpoint
	// KindWALTruncate is one corrupt WAL tail truncated during recovery:
	// A=records salvaged from the segment, N=bytes discarded.
	KindWALTruncate
	// KindQuarantine is one checkpoint quarantined during recovery because
	// it was corrupt or failed the post-replay audit: A=batch ordinal of
	// the rejected checkpoint.
	KindQuarantine
	// KindRecover is one completed recovery: A=batch ordinal restored from
	// the chosen checkpoint, N=batches replayed from the WAL suffix.
	KindRecover
	// KindRetry is one retryable fault re-attempted in place by a
	// seeded backoff policy (internal/retry): A=attempt number that
	// failed, N=backoff nanoseconds before the next attempt.
	KindRetry

	numKinds
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case KindBatchApply:
		return "batch-apply"
	case KindMerge:
		return "merge"
	case KindSplit:
		return "split"
	case KindReseed:
		return "reseed"
	case KindGrow:
		return "grow"
	case KindShrink:
		return "shrink"
	case KindViolation:
		return "violation"
	case KindCheckpoint:
		return "checkpoint"
	case KindWALTruncate:
		return "wal-truncate"
	case KindQuarantine:
		return "quarantine"
	case KindRecover:
		return "recover"
	case KindRetry:
		return "retry"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText renders the kind name in JSON event dumps.
func (k Kind) MarshalText() ([]byte, error) {
	if k >= numKinds {
		return nil, fmt.Errorf("telemetry: unknown event kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText parses the names MarshalText produces, so event dumps
// round-trip through JSON.
func (k *Kind) UnmarshalText(text []byte) error {
	for c := Kind(0); c < numKinds; c++ {
		if c.String() == string(text) {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", text)
}

// Event is one structured maintenance event. The A/B/N fields are
// kind-specific (see the Kind constants); Batch is the ordinal of the
// batch being applied when the event fired, or -1 outside batch
// processing. Events are fixed-size so appending never allocates.
type Event struct {
	Seq   uint64 `json:"seq"`
	Kind  Kind   `json:"kind"`
	Batch int    `json:"batch"`
	A     int    `json:"a"`
	B     int    `json:"b"`
	N     int    `json:"n"`
}

// String summarises the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s batch=%d a=%d b=%d n=%d", e.Seq, e.Kind, e.Batch, e.A, e.B, e.N)
}

// DefaultEventCapacity bounds the event ring when NewEventLog is given a
// non-positive capacity.
const DefaultEventCapacity = 1024

// EventLog is a bounded ring of events. When full, appending drops the
// oldest event and counts the drop, so a long-lived production process has
// a hard memory bound while per-kind totals stay exact.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest retained event
	n       int // retained events
	seq     uint64
	dropped uint64
	counts  [numKinds]uint64
}

// NewEventLog returns a ring retaining at most capacity events
// (DefaultEventCapacity when capacity ≤ 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Append records e, assigning its sequence number.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.seq
	l.seq++
	if int(e.Kind) < len(l.counts) {
		l.counts[e.Kind]++
	}
	if l.n == len(l.buf) {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
		return
	}
	l.buf[(l.head+l.n)%len(l.buf)] = e
	l.n++
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.head+i)%len(l.buf)]
	}
	return out
}

// Capacity returns the retention bound the ring was built with. The
// buffer never resizes, so no lock is needed.
func (l *EventLog) Capacity() int { return len(l.buf) }

// Total returns how many events were ever appended.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many events the bounded ring has evicted.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Count returns how many events of kind k were ever appended (evicted ones
// included).
func (l *EventLog) Count(k Kind) uint64 {
	if int(k) >= int(numKinds) {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[k]
}
