package telemetry_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"incbubbles/internal/bubble"
	"incbubbles/internal/telemetry"
)

// FuzzAudit feeds arbitrary (frequently corrupt) bubble statistics through
// the auditor: whatever (n, LS, SS) combination the snapshot decoder lets
// through — including unrealizable ones — Audit must return structured
// violations, never panic.
func FuzzAudit(f *testing.F) {
	var buf bytes.Buffer
	set, _ := bubble.NewSet(2, bubble.Options{UseTriangleInequality: true, TrackMembers: true})
	set.AddBubble([]float64{0, 0})
	set.AddBubble([]float64{5, 5})
	set.AssignClosest(1, []float64{0.5, 0})
	set.AssignClosest(2, []float64{5, 5.5})
	set.Save(&buf)
	f.Add(buf.Bytes(), 2)
	// Unrealizable statistics Load accepts: SS below ‖LS‖²/n, empty-bubble
	// residue, huge magnitudes.
	f.Add([]byte(`{"version":1,"dim":2,"bubbles":[{"seed":[0,0],"n":3,"ls":[9,9],"ss":1}]}`), 3)
	f.Add([]byte(`{"version":1,"dim":2,"bubbles":[{"seed":[0,0],"n":0,"ls":[1,0],"ss":7}]}`), 0)
	f.Add([]byte(`{"version":1,"dim":1,"bubbles":[{"seed":[1e308],"n":1,"ls":[-1e308],"ss":-1e308}]}`), 1)
	f.Add([]byte(`{"version":1,"dim":3,"bubbles":[]}`), -5)
	f.Fuzz(func(t *testing.T, data []byte, totalPoints int) {
		s, err := bubble.Load(bytes.NewReader(data), bubble.Options{})
		if err != nil {
			return
		}
		vs := telemetry.AuditWith(s, totalPoints, telemetry.AuditOptions{MaxViolations: 16})
		for _, v := range vs {
			if v.Code == telemetry.CodeInternal {
				t.Fatalf("auditor recovered from a panic on decodable input: %v", v)
			}
			_ = v.String()
		}
	})
}

// FuzzSnapshot asserts ParseSnapshot never panics and that any snapshot it
// accepts re-marshals to a stable fixed point (parse∘marshal is identity
// from the first marshal on).
func FuzzSnapshot(f *testing.F) {
	r := telemetry.NewRegistry()
	r.Counter("distance.computed").Add(12)
	r.Gauge("core.bubbles").Set(3.5)
	r.Histogram("core.phase.search_seconds", telemetry.SecondsBounds()).Observe(0.01)
	f.Add([]byte(r.String()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"a":1},"gauges":{"g":-2.5}}`))
	f.Add([]byte(`{"histograms":{"h":{"bounds":[1,2],"counts":[0,1,2],"count":3,"sum":4.5}}}`))
	f.Add([]byte(`{"counters":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := telemetry.ParseSnapshot(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(snap)
		if err != nil {
			// Non-finite gauge values parsed from nothing: impossible via
			// JSON input, so marshal must succeed.
			t.Fatalf("accepted snapshot failed to marshal: %v", err)
		}
		again, err := telemetry.ParseSnapshot(out)
		if err != nil {
			t.Fatalf("marshal produced unparsable output: %v", err)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("snapshot not a fixed point:\n%s\nvs\n%s", out, out2)
		}
	})
}

// FuzzEventRoundTrip asserts events round-trip through their JSON encoding
// for every valid kind.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint8(0), 1, 2, 3, 4)
	f.Add(uint8(6), -1, 0, 0, 100)
	f.Fuzz(func(t *testing.T, kind uint8, batch, a, b, n int) {
		e := telemetry.Event{Kind: telemetry.Kind(kind), Batch: batch, A: a, B: b, N: n}
		raw, err := json.Marshal(e)
		if err != nil {
			// Kinds outside the named range have no text form.
			return
		}
		var back telemetry.Event
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("marshalled event does not unmarshal: %v\n%s", err, raw)
		}
		if !reflect.DeepEqual(e, back) {
			t.Fatalf("event round-trip: %+v != %+v", e, back)
		}
	})
}
