// Package telemetry is the observability layer of the repository: a
// lightweight, allocation-conscious metrics registry (counters, gauges,
// bounded histograms), a bounded structured event log for the maintenance
// operations the paper's evaluation counts (batch-apply, merge, split,
// reseed), an invariant auditor that machine-checks the sufficient-
// statistics contracts of §3–§4 after every batch, and an optional debug
// HTTP endpoint serving expvar-style snapshots plus net/http/pprof.
//
// The paper's headline claims are quantitative — distance-calculation
// counts (Figures 10–11), the β distribution (§4.1), merge/split frequency
// (§4.2) — so the maintenance pipeline reports all of them here at runtime
// instead of only inside the experiment harness.
//
// Everything is safe for concurrent use. Metric handles (Counter, Gauge,
// Histogram) are resolved once by name and then updated with atomic
// operations only, so instrumented hot paths neither allocate nor take
// locks.
package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates delta into the gauge with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bounded histogram with fixed upper bounds: bucket i counts
// observations v ≤ bounds[i]; one overflow bucket counts the rest. Bounds
// are fixed at registration, so observation is a binary search plus two
// atomic adds — no allocation, no locks.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	// Deduplicate: equal bounds would create dead buckets.
	out := bs[:0]
	for i, b := range bs {
		//lint:allow floatsafe deduplicating sorted bounds needs exact equality; near-equal bounds are distinct buckets
		if i == 0 || b != bs[i-1] {
			out = append(out, b)
		}
	}
	return &Histogram{bounds: out, counts: make([]atomic.Uint64, len(out)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Registry holds named metrics. Lookup methods are get-or-create, so
// instrumentation sites can resolve handles without registration order
// mattering; resolving the same name twice returns the same handle.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending upper bounds if needed. The bounds of an existing
// histogram are kept; they are fixed for the metric's lifetime.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the serializable state of one histogram. Counts has
// len(Bounds)+1 entries; the final entry is the overflow bucket. P50/P95/P99
// are bucket-interpolated estimates computed at snapshot time (see Quantile);
// they are derived fields, carried so the debug endpoint and offline report
// readers need no bucket math of their own.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50,omitempty"`
	P95    float64   `json:"p95,omitempty"`
	P99    float64   `json:"p99,omitempty"`
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket counts
// with linear interpolation inside the target bucket, the standard
// fixed-bucket estimator: the first bucket's lower edge is 0, and ranks
// landing in the overflow bucket clamp to the largest bound (the histogram
// records nothing above it). An empty histogram reports 0 — never NaN, so
// snapshots always marshal.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || len(s.Counts) != len(s.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if upper < lower {
			// All-negative bounds: the zero lower edge is above the
			// bucket; the bound itself is the only defensible estimate.
			return upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, in the JSON shape the
// debug endpoint serves. Metrics are read one at a time, so a snapshot
// taken during concurrent updates is internally consistent per metric but
// not across metrics — the standard expvar contract.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// String renders the snapshot as JSON (expvar.Var-compatible). Map keys
// are emitted sorted by encoding/json, so two snapshots of identical state
// serialize byte-identically.
func (r *Registry) String() string {
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}" // a gauge holding NaN/Inf is not representable in JSON
	}
	return string(data)
}

// MarshalJSON makes Snapshot its own canonical wire form.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type plain Snapshot // avoid recursion
	return json.Marshal(plain(s))
}

// ParseSnapshot decodes a snapshot previously serialized with
// json.Marshal / Registry.String.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}
