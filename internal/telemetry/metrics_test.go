package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("re-resolving a counter returned a different handle")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 50, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// v ≤ 1 → bucket 0 (0.5, 1); v ≤ 10 → bucket 1 (2, 10); v ≤ 100 →
	// bucket 2 (50); overflow (1000).
	want := []uint64{2, 2, 1, 1}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Sum != 0.5+1+2+10+50+1000 {
		t.Fatalf("sum = %v", snap.Sum)
	}
}

func TestHistogramSanitizesBounds(t *testing.T) {
	h := newHistogram([]float64{10, 1, 10, math.NaN(), 5})
	if want := []float64{1, 5, 10}; !reflect.DeepEqual(h.bounds, want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", CountBounds()).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("distance.computed").Add(42)
	r.Gauge("core.bubbles").Set(100)
	r.Histogram("core.phase.search_seconds", SecondsBounds()).Observe(0.002)
	first := r.String()
	snap, err := ParseSnapshot([]byte(first))
	if err != nil {
		t.Fatalf("ParseSnapshot: %v", err)
	}
	again, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != first {
		t.Fatalf("snapshot did not round-trip:\n%s\nvs\n%s", first, again)
	}
	if snap.Counters["distance.computed"] != 42 {
		t.Fatalf("parsed counters = %v", snap.Counters)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Append(Event{Kind: KindMerge, A: i})
	}
	l.Append(Event{Kind: KindSplit})
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	// Oldest first; three merges were evicted.
	if events[0].A != 3 || events[2].Kind != KindSplit {
		t.Fatalf("unexpected ring contents: %v", events)
	}
	if got := l.Total(); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	if got := l.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := l.Count(KindMerge); got != 5 {
		t.Fatalf("merge count = %d, want 5", got)
	}
	for i, e := range events {
		if e.Seq != uint64(i+3) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestNilSinkIsNoOp(t *testing.T) {
	var s *Sink
	s.Emit(Event{Kind: KindMerge})
	s.Counter("x").Inc()
	s.Gauge("y").Set(1)
	s.Histogram("z", CountBounds()).Observe(1)
}

func TestDebugMux(t *testing.T) {
	sink := NewSink()
	sink.Counter(MetricCoreBatches).Add(7)
	sink.Emit(Event{Kind: KindBatchApply, Batch: 0, N: 10})
	mux := DebugMux(sink)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/telemetry", nil))
	if rec.Code != 200 {
		t.Fatalf("telemetry status %d", rec.Code)
	}
	snap, err := ParseSnapshot(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("telemetry body not a snapshot: %v", err)
	}
	if snap.Counters[MetricCoreBatches] != 7 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	var body struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("events body: %v", err)
	}
	if body.Total != 1 || len(body.Events) != 1 || body.Events[0].N != 10 {
		t.Fatalf("events = %+v", body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof status %d", rec.Code)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("kind %d has no name: %q", k, s)
		}
	}
}
