package telemetry_test

import (
	"math"
	"testing"

	"incbubbles/internal/telemetry"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestQuantileUniform checks the interpolated estimator against an exact
// uniform distribution: values 1..100 over decade buckets land each
// decile on its bucket edge.
func TestQuantileUniform(t *testing.T) {
	r := telemetry.NewRegistry()
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := r.Histogram("u", bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.10, 10}, {1, 100}, {0, 0},
	} {
		if got := s.Quantile(tc.q); !almostEq(got, tc.want) {
			t.Errorf("q=%.2f: got %g, want %g", tc.q, got, tc.want)
		}
	}
	if !almostEq(s.P50, 50) || !almostEq(s.P95, 95) || !almostEq(s.P99, 99) {
		t.Errorf("snapshot percentiles = %g/%g/%g", s.P50, s.P95, s.P99)
	}
}

// TestQuantileEdgeCases: empty histograms report 0 (never NaN), and ranks
// landing in the overflow bucket clamp to the largest bound.
func TestQuantileEdgeCases(t *testing.T) {
	r := telemetry.NewRegistry()

	empty := r.Histogram("empty", []float64{1, 2}).Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty q=%g: got %g, want 0", q, got)
		}
	}
	if empty.P50 != 0 || empty.P95 != 0 || empty.P99 != 0 {
		t.Errorf("empty snapshot percentiles nonzero: %+v", empty)
	}

	over := r.Histogram("over", []float64{1, 2})
	for i := 0; i < 10; i++ {
		over.Observe(1000) // everything overflows
	}
	s := over.Snapshot()
	if !almostEq(s.P50, 2) || !almostEq(s.P99, 2) {
		t.Errorf("overflow percentiles = %g/%g, want clamp to 2", s.P50, s.P99)
	}

	// First bucket interpolates from a zero lower edge.
	low := r.Histogram("low", []float64{4, 8})
	for i := 0; i < 4; i++ {
		low.Observe(1)
	}
	if got := low.Snapshot().Quantile(0.5); !almostEq(got, 2) {
		t.Errorf("first-bucket median = %g, want 2", got)
	}

	// NaN never escapes even for degenerate parsed snapshots.
	bad := telemetry.HistogramSnapshot{Counts: []uint64{3}, Count: 3}
	if got := bad.Quantile(0.5); got != 0 {
		t.Errorf("boundless snapshot quantile = %g, want 0", got)
	}
}

// TestQuantileSkewed pins the interpolation inside an interior bucket.
func TestQuantileSkewed(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("skew", []float64{1, 2, 4})
	h.Observe(0.5) // bucket (0,1]
	h.Observe(3)   // bucket (2,4]
	h.Observe(3)
	h.Observe(3)
	s := h.Snapshot()
	// rank(0.5)=2: first bucket holds cum=1, target bucket (2,4] holds
	// counts 3 with prev=1 → 2 + 2*(2-1)/3.
	if want := 2 + 2.0/3; !almostEq(s.P50, want) {
		t.Errorf("P50 = %g, want %g", s.P50, want)
	}
}
