package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4), stdlib only. A PromWriter
// accumulates samples — whole registry snapshots under a tenant label,
// plus individual scrape-synthesized series — and renders one parseable
// exposition: families sorted by name, each with exactly one # HELP and
// # TYPE line, histograms as cumulative le-buckets with +Inf, _sum and
// _count. Counters render via FormatUint so exact uint64 totals survive
// the round trip (the distance-accounting cross-check in the server
// tests depends on that).

// Label is one exposition label pair. Values are escaped on write.
type Label struct {
	Name  string
	Value string
}

// PromName converts a dotted registry metric name ("server.queue_depth")
// to its exposition form ("server_queue_depth"). Any character outside
// [a-zA-Z0-9_:] becomes an underscore; a leading digit gains one.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

type promRow struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels []Label
	value  string // pre-formatted so uint64 counters stay exact
}

type promFamily struct {
	name string // exposition name (sanitized)
	typ  string // "counter" | "gauge" | "histogram"
	help string
	rows []promRow
}

// PromWriter accumulates metric samples and renders them as one
// Prometheus text exposition. Not safe for concurrent use; build one per
// scrape. The first type conflict (the same family added as two
// different types) sticks and surfaces from WriteTo, so a scrape can
// never silently interleave mismatched families.
type PromWriter struct {
	families map[string]*promFamily
	err      error
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{families: make(map[string]*promFamily)}
}

func (w *PromWriter) family(name, typ string) *promFamily {
	pn := PromName(name)
	f := w.families[pn]
	if f == nil {
		f = &promFamily{name: pn, typ: typ, help: promHelp(name)}
		w.families[pn] = f
		return f
	}
	if f.typ != typ && w.err == nil {
		w.err = fmt.Errorf("telemetry: metric family %s added as both %s and %s", pn, f.typ, typ)
	}
	return f
}

// AddSnapshot adds every metric in snap, each sample carrying labels
// (typically the tenant). Families are keyed by sanitized name, so the
// same metric from several snapshots folds into one family with one row
// per label set. Metric names within the snapshot are walked sorted for
// deterministic row order.
func (w *PromWriter) AddSnapshot(snap Snapshot, labels ...Label) {
	for _, name := range sortedKeys(snap.Counters) {
		w.AddCounterSample(name, snap.Counters[name], labels...)
	}
	for _, name := range sortedKeys(snap.Gauges) {
		w.AddGaugeSample(name, snap.Gauges[name], labels...)
	}
	for _, name := range sortedKeys(snap.Histograms) {
		w.AddHistogramSample(name, snap.Histograms[name], labels...)
	}
}

// AddCounterSample adds one counter sample. The uint64 value is rendered
// exactly (no float round-trip).
func (w *PromWriter) AddCounterSample(name string, v uint64, labels ...Label) {
	f := w.family(name, "counter")
	f.rows = append(f.rows, promRow{labels: cloneLabels(labels), value: strconv.FormatUint(v, 10)})
}

// AddGaugeSample adds one gauge sample.
func (w *PromWriter) AddGaugeSample(name string, v float64, labels ...Label) {
	f := w.family(name, "gauge")
	f.rows = append(f.rows, promRow{labels: cloneLabels(labels), value: formatFloat(v)})
}

// AddHistogramSample adds one histogram sample: cumulative le-buckets
// per bound, the +Inf bucket, then _sum and _count.
func (w *PromWriter) AddHistogramSample(name string, h HistogramSnapshot, labels ...Label) {
	f := w.family(name, "histogram")
	var cum uint64
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		f.rows = append(f.rows, promRow{
			suffix: "_bucket",
			labels: append(cloneLabels(labels), Label{Name: "le", Value: formatFloat(b)}),
			value:  strconv.FormatUint(cum, 10),
		})
	}
	f.rows = append(f.rows, promRow{
		suffix: "_bucket",
		labels: append(cloneLabels(labels), Label{Name: "le", Value: "+Inf"}),
		value:  strconv.FormatUint(h.Count, 10),
	})
	f.rows = append(f.rows, promRow{suffix: "_sum", labels: cloneLabels(labels), value: formatFloat(h.Sum)})
	f.rows = append(f.rows, promRow{suffix: "_count", labels: cloneLabels(labels), value: strconv.FormatUint(h.Count, 10)})
}

// WriteTo renders the exposition: families sorted by name, HELP then
// TYPE then rows in insertion order. It returns the sticky type-conflict
// error, if any, before writing anything.
func (w *PromWriter) WriteTo(out io.Writer) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	names := make([]string, 0, len(w.families))
	for name := range w.families {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(out)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	for _, name := range names {
		f := w.families[name]
		if err := count(fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)); err != nil {
			return n, err
		}
		for _, row := range f.rows {
			if err := count(fmt.Fprintf(bw, "%s%s%s %s\n", f.name, row.suffix, formatLabels(row.labels), row.value)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

func cloneLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	return append([]Label(nil), labels...)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promHelp maps catalog names to their one-line HELP text. Unknown names
// (tenant-registry families added after this table) fall back to a
// generic line so every family still carries HELP.
func promHelp(name string) string {
	if h, ok := promHelpText[name]; ok {
		return h
	}
	return "incbubbles metric " + name + "."
}

var promHelpText = map[string]string{
	MetricDistanceComputed:       "Exact distance computations, from the vecmath counter.",
	MetricDistancePruned:         "Distance computations avoided by triangle-inequality pruning.",
	MetricServerQueueDepth:       "Ingest queue depth sampled by the tenant worker at each dequeue.",
	MetricServerQueueWaitSeconds: "Seconds an admitted batch waited in the ingest queue.",
	MetricServerApplySeconds:     "Seconds from worker pickup to durable apply acknowledgement.",
	MetricServerHTTPRequests:     "HTTP requests routed to a tenant.",
	MetricServerHTTPSeconds:      "HTTP request latency in seconds.",
	MetricServerHTTP429:          "Requests rejected with 429 (ingest queue full).",
	MetricServerHTTP503:          "Requests rejected with 503 (draining or tenant degraded).",
	MetricServerLadderState:      "Degradation-ladder state: 0 healthy, 1 degraded; the reason label names the rung.",
	MetricServerCheckpointAge:    "Seconds since the tenant's last durable checkpoint (-1 before the first).",
	MetricEventsDropped:          "Telemetry events evicted from the bounded event ring.",
	MetricTraceSpansDropped:      "Spans evicted from the bounded trace ring.",
	MetricWALFsyncSeconds:        "WAL fsync latency in seconds.",
	MetricWALGroupCommitSeconds:  "WAL shared group-commit flush latency in seconds.",
	MetricWALCheckpointSeconds:   "WAL checkpoint write latency in seconds.",
}

// PromPoint is one parsed sample row.
type PromPoint struct {
	Suffix string // "", "_bucket", "_sum", "_count"
	Labels map[string]string
	Value  float64
	Raw    string // the unparsed value text, for exact uint64 comparisons
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name   string
	Type   string
	Help   string
	Points []PromPoint
}

// ParseProm parses a text exposition produced by PromWriter (a strict
// subset of the Prometheus 0.0.4 format): every sample must follow its
// family's # TYPE line, histogram samples must use the _bucket/_sum/
// _count suffixes, and label values must use the standard escapes.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	families := make(map[string]*PromFamily)
	var cur *PromFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := families[name]
			if f == nil {
				f = &PromFamily{Name: name}
				families[name] = f
			}
			f.Help = unescapeHelp(help)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			f := families[name]
			if f == nil {
				f = &PromFamily{Name: name}
				families[name] = f
			}
			if f.Type != "" && f.Type != typ {
				return nil, fmt.Errorf("line %d: family %s re-typed %s -> %s", lineNo, name, f.Type, typ)
			}
			f.Type = typ
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments
		}
		point, name, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || !sampleBelongsTo(cur, name, &point) {
			return nil, fmt.Errorf("line %d: sample %s outside its family's TYPE block", lineNo, name)
		}
		cur.Points = append(cur.Points, point)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// sampleBelongsTo checks that a sample named name belongs to family f,
// setting point.Suffix for histogram series names.
func sampleBelongsTo(f *PromFamily, name string, point *PromPoint) bool {
	if name == f.Name {
		return true
	}
	if f.Type != "histogram" {
		return false
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if name == f.Name+suffix {
			point.Suffix = suffix
			return true
		}
	}
	return false
}

func parsePromSample(line string) (PromPoint, string, error) {
	var p PromPoint
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return p, "", fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := findLabelsEnd(rest)
		if end < 0 {
			return p, "", fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return p, "", fmt.Errorf("%w in %q", err, line)
		}
		p.Labels = labels
		rest = rest[end+1:]
	}
	raw := strings.TrimSpace(rest)
	if raw == "" {
		return p, "", fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return p, "", fmt.Errorf("bad value %q: %w", raw, err)
	}
	p.Raw = raw
	p.Value = v
	return p, name, nil
}

// findLabelsEnd returns the index of the closing brace of a label set
// that starts at s[0] == '{', honouring escapes inside quoted values.
func findLabelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parsePromLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					b.WriteByte(s[i+1])
				}
				i++
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("label %s value unterminated", name)
		}
		labels[name] = b.String()
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

func unescapeHelp(v string) string {
	r := strings.NewReplacer(`\n`, "\n", `\\`, `\`)
	return r.Replace(v)
}
