package telemetry

import (
	"strings"
	"testing"
)

// TestPromRoundTrip renders a registry snapshot and parses it back,
// checking every family kind survives: exact counter values, gauge
// text, histogram bucket rows with +Inf/_sum/_count, HELP/TYPE lines.
func TestPromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricDistanceComputed).Add(1234567890123)
	reg.Gauge(MetricServerQueueDepth).Set(3.5)
	h := reg.Histogram(MetricServerQueueWaitSeconds, SecondsBounds())
	h.Observe(0.002)
	h.Observe(0.2)
	h.Observe(50) // overflow

	w := NewPromWriter()
	w.AddSnapshot(reg.Snapshot(), Label{Name: "tenant", Value: "alpha"})
	var b strings.Builder
	if _, err := w.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse back: %v\nexposition:\n%s", err, b.String())
	}

	ctr := fams["distance_computed"]
	if ctr == nil || ctr.Type != "counter" {
		t.Fatalf("distance_computed family missing or mistyped: %+v", ctr)
	}
	if ctr.Help == "" {
		t.Fatal("distance_computed has no HELP text")
	}
	if len(ctr.Points) != 1 || ctr.Points[0].Raw != "1234567890123" {
		t.Fatalf("counter did not round-trip exactly: %+v", ctr.Points)
	}
	if ctr.Points[0].Labels["tenant"] != "alpha" {
		t.Fatalf("tenant label lost: %+v", ctr.Points[0].Labels)
	}

	g := fams["server_queue_depth"]
	if g == nil || g.Type != "gauge" || len(g.Points) != 1 || g.Points[0].Raw != "3.5" {
		t.Fatalf("gauge family wrong: %+v", g)
	}

	hist := fams["server_queue_wait_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hist)
	}
	assertHistogramShape(t, hist, "alpha", 3)
}

// assertHistogramShape checks one tenant's series within a parsed
// histogram family: cumulative monotone buckets ending in +Inf == count,
// plus matching _count.
func assertHistogramShape(t *testing.T, f *PromFamily, tenant string, wantCount uint64) {
	t.Helper()
	var buckets []PromPoint
	var count *PromPoint
	var sum *PromPoint
	for i, p := range f.Points {
		if p.Labels["tenant"] != tenant {
			continue
		}
		switch p.Suffix {
		case "_bucket":
			buckets = append(buckets, p)
		case "_count":
			count = &f.Points[i]
		case "_sum":
			sum = &f.Points[i]
		}
	}
	if len(buckets) == 0 || count == nil || sum == nil {
		t.Fatalf("%s: incomplete histogram series for tenant %s", f.Name, tenant)
	}
	var prev uint64
	sawInf := false
	for _, b := range buckets {
		le, ok := b.Labels["le"]
		if !ok {
			t.Fatalf("%s: bucket without le label", f.Name)
		}
		cum := mustUint(t, b.Raw)
		if cum < prev {
			t.Fatalf("%s: bucket counts not monotone at le=%s: %d < %d", f.Name, le, cum, prev)
		}
		prev = cum
		if le == "+Inf" {
			sawInf = true
			if cum != wantCount {
				t.Fatalf("%s: +Inf bucket %d, want %d", f.Name, cum, wantCount)
			}
		}
	}
	if !sawInf {
		t.Fatalf("%s: no +Inf bucket", f.Name)
	}
	if got := mustUint(t, count.Raw); got != wantCount {
		t.Fatalf("%s: _count %d, want %d", f.Name, got, wantCount)
	}
}

func mustUint(t *testing.T, raw string) uint64 {
	t.Helper()
	var v uint64
	for _, c := range raw {
		if c < '0' || c > '9' {
			t.Fatalf("value %q is not an exact uint", raw)
		}
		v = v*10 + uint64(c-'0')
	}
	return v
}

// TestPromLabelEscaping round-trips a label value containing every
// character the format escapes.
func TestPromLabelEscaping(t *testing.T) {
	evil := "a\\b\"c\nd"
	w := NewPromWriter()
	w.AddCounterSample(MetricServerHTTPRequests, 7, Label{Name: "tenant", Value: evil})
	var b strings.Builder
	if _, err := w.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	f := fams["server_http_requests"]
	if f == nil || len(f.Points) != 1 {
		t.Fatalf("family missing: %+v", f)
	}
	if got := f.Points[0].Labels["tenant"]; got != evil {
		t.Fatalf("label escaping lost data: %q != %q", got, evil)
	}
}

// TestPromTypeConflict pins the sticky error: one family added as two
// types must fail the whole scrape rather than emit a corrupt page.
func TestPromTypeConflict(t *testing.T) {
	w := NewPromWriter()
	w.AddCounterSample("x.y", 1)
	w.AddGaugeSample("x.y", 2)
	var b strings.Builder
	if _, err := w.WriteTo(&b); err == nil {
		t.Fatal("want type-conflict error")
	}
	if b.Len() != 0 {
		t.Fatalf("conflicting writer emitted output: %q", b.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.queue_depth": "server_queue_depth",
		"distance.computed":  "distance_computed",
		"9lives":             "_9lives",
		"a-b c":              "a_b_c",
		"ok:name_1":          "ok:name_1",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromMultiTenantFold pins that the same metric from two snapshots
// folds into one family with one row per tenant, emitted under a single
// TYPE header.
func TestPromMultiTenantFold(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter(MetricServerIngested).Add(3)
	b.Counter(MetricServerIngested).Add(5)
	w := NewPromWriter()
	w.AddSnapshot(a.Snapshot(), Label{Name: "tenant", Value: "a"})
	w.AddSnapshot(b.Snapshot(), Label{Name: "tenant", Value: "b"})
	var out strings.Builder
	if _, err := w.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Count(text, "# TYPE server_batches_ingested counter") != 1 {
		t.Fatalf("want exactly one TYPE line:\n%s", text)
	}
	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	f := fams["server_batches_ingested"]
	if f == nil || len(f.Points) != 2 {
		t.Fatalf("want 2 rows, got %+v", f)
	}
	var total uint64
	for _, p := range f.Points {
		total += mustUint(t, p.Raw)
	}
	if total != 8 {
		t.Fatalf("rows sum to %d, want 8", total)
	}
}
