package telemetry

// Canonical metric names. Instrumented packages resolve handles for these
// once and update them atomically; DESIGN.md §8 documents the full schema.
const (
	// MetricDistanceComputed / MetricDistancePruned mirror the
	// vecmath.Counter the summarizer routes all distance accounting
	// through. They are fed exclusively by deltas of that counter taken at
	// phase boundaries, so the two surfaces can never disagree (the
	// cross-check test in internal/core pins this).
	MetricDistanceComputed = "distance.computed"
	MetricDistancePruned   = "distance.pruned"

	MetricCoreBatches        = "core.batches"
	MetricCoreInserts        = "core.inserts"
	MetricCoreDeletes        = "core.deletes"
	MetricCoreRebuilt        = "core.rebuilt"
	MetricCoreRounds         = "core.maintenance_rounds"
	MetricCoreDonorsFromGood = "core.donors_from_good"
	MetricCoreBubbles        = "core.bubbles"
	MetricCoreAuditRuns      = "core.audit.runs"
	MetricCoreAuditViolation = "core.audit.violations"

	// Per-phase timings of the two-phase assignment pipeline (DESIGN.md
	// §7): the concurrent closest-seed search fan-out, the serial apply
	// walk, and the classify→merge/split maintenance rounds.
	MetricPhaseSearchSeconds   = "core.phase.search_seconds"
	MetricPhaseApplySeconds    = "core.phase.apply_seconds"
	MetricPhaseMaintainSeconds = "core.phase.maintain_seconds"

	// MetricWorkerComputed observes each worker's private distance tally
	// as it is merged at a phase boundary — the distribution behind the
	// totals above.
	MetricWorkerComputed = "core.assign.worker_computed"

	MetricOpticsSpaceBuilds  = "optics.space.builds"
	MetricOpticsSpaceObjects = "optics.space.objects"
	MetricOpticsSpaceSeconds = "optics.space.build_seconds"
	MetricOpticsRuns         = "optics.runs"
	MetricOpticsRunSeconds   = "optics.run_seconds"

	// Durability layer (internal/wal): write-ahead log appends and syncs,
	// checkpoints, and the degradation events of the recovery ladder
	// (DESIGN.md §10).
	MetricWALAppends         = "wal.appends"
	MetricWALAppendBytes     = "wal.append_bytes"
	MetricWALSyncs           = "wal.syncs"
	MetricWALTruncations     = "wal.truncations"
	MetricWALCheckpoints     = "wal.checkpoints"
	MetricWALCheckpointBytes = "wal.checkpoint_bytes"
	MetricWALQuarantined     = "wal.quarantined"
	MetricWALReplayedBatches = "wal.replayed_batches"
	// MetricWALCheckpointRetries counts checkpoint write attempts that
	// failed retryably and were re-tried in place by the configured
	// backoff policy (Options.CheckpointRetry).
	MetricWALCheckpointRetries = "wal.checkpoint_retries"

	// WAL latency histograms (SecondsBounds buckets): each fsync the
	// layer issues, each shared group-commit flush, and each whole
	// checkpoint write (encode + temp write + fsync + rename), sync or
	// async alike.
	MetricWALFsyncSeconds       = "wal.fsync_seconds"
	MetricWALGroupCommitSeconds = "wal.group_commit_seconds"
	MetricWALCheckpointSeconds  = "wal.checkpoint_seconds"

	// Serving layer (internal/server): per-tenant ingest accounting and
	// the fault-tolerance machinery around it (DESIGN.md §15).
	MetricServerIngested        = "server.batches_ingested"
	MetricServerIngestRetries   = "server.ingest_retries"
	MetricServerQueueRejected   = "server.queue_rejected"
	MetricServerDegraded        = "server.tenant_degraded"
	MetricServerSnapshotErrors  = "server.snapshot_errors"
	MetricServerCancelledBefore = "server.cancelled_before_apply"

	// Serving-layer observability series (DESIGN.md §16). The worker
	// samples queue depth and admission waits itself at each dequeue;
	// apply latency covers worker pickup to durability ack; the HTTP
	// counters/histogram are per tenant-routed request, with the 429/503
	// backpressure outcomes broken out.
	MetricServerQueueDepth       = "server.queue_depth"
	MetricServerQueueWaitSeconds = "server.queue_wait_seconds"
	MetricServerApplySeconds     = "server.apply_seconds"
	MetricServerHTTPRequests     = "server.http_requests"
	MetricServerHTTPSeconds      = "server.http_request_seconds"
	MetricServerHTTP429          = "server.http_429"
	MetricServerHTTP503          = "server.http_503"

	// Scrape-synthesized series: not resolved through a Sink but written
	// directly by the /metrics exposition from live component state (the
	// degradation ladder, the WAL's checkpoint clock, the bounded-ring
	// drop counters). Declared here so every exported series still comes
	// from this one catalog block (the metriccatalog analyzer pins that).
	MetricServerLadderState   = "server.ladder_state"
	MetricServerCheckpointAge = "server.last_checkpoint_age_seconds"
	MetricEventsDropped       = "telemetry.events_dropped"
	MetricTraceSpansDropped   = "trace.spans_dropped"
)

// SecondsBounds is the shared bucket layout for phase-timing histograms:
// exponential from 1µs to 10s.
func SecondsBounds() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
}

// CountBounds is the shared bucket layout for per-worker tally histograms:
// powers of four from 1 to ~1M.
func CountBounds() []float64 {
	return []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// Sink bundles the metrics registry and the event log one instrumented
// component reports into. A nil *Sink is a valid no-op receiver, so call
// sites need no guards.
type Sink struct {
	Metrics *Registry
	Events  *EventLog
}

// NewSink returns a sink with a fresh registry and a default-capacity
// event log.
func NewSink() *Sink {
	return NewSinkOptions(SinkOptions{})
}

// SinkOptions sizes a sink's bounded components.
type SinkOptions struct {
	// EventCapacity bounds the event ring: once full, appends evict the
	// oldest event and EventLog.Dropped counts the eviction. ≤0 selects
	// DefaultEventCapacity.
	EventCapacity int
}

// NewSinkOptions returns a sink with a fresh registry and an event log
// sized per opts.
func NewSinkOptions(opts SinkOptions) *Sink {
	return &Sink{Metrics: NewRegistry(), Events: NewEventLog(opts.EventCapacity)}
}

// Emit appends e to the event log. Safe on a nil sink.
func (s *Sink) Emit(e Event) {
	if s == nil || s.Events == nil {
		return
	}
	s.Events.Append(e)
}

// Counter resolves a counter handle. Safe on a nil sink: returns a
// detached handle whose updates go nowhere visible.
func (s *Sink) Counter(name string) *Counter {
	if s == nil || s.Metrics == nil {
		return &Counter{}
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge handle, with the same nil behaviour as Counter.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil || s.Metrics == nil {
		return &Gauge{}
	}
	return s.Metrics.Gauge(name)
}

// Histogram resolves a histogram handle, with the same nil behaviour as
// Counter.
func (s *Sink) Histogram(name string, bounds []float64) *Histogram {
	if s == nil || s.Metrics == nil {
		return newHistogram(bounds)
	}
	return s.Metrics.Histogram(name, bounds)
}
