package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ChromeEvent is one entry of the Chrome trace-event format ("X"
// complete events), as consumed by Perfetto and chrome://tracing.
// Timestamps and durations are microseconds.
type ChromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace-event file.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvents converts records into trace-event entries, ordered by
// (Start, ID) so output is deterministic for a deterministic clock.
// All spans share pid/tid 1: the pipeline coordinator is a single
// logical track and viewers reconstruct nesting from ts/dur
// containment.
func ChromeEvents(recs []Record) []ChromeEvent {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	out := make([]ChromeEvent, len(sorted))
	for i, r := range sorted {
		out[i] = ChromeEvent{
			Name: r.Name,
			Cat:  category(r.Name),
			Ph:   "X",
			Ts:   float64(r.Start) / 1e3,
			Dur:  float64(r.Dur) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: r.AttrMap(),
		}
	}
	return out
}

// category derives the event category from the span-name prefix
// ("core.search" → "core"), which Perfetto uses for colouring/filters.
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// WriteChrome writes records as a Chrome trace-event JSON object. The
// output is valid (an empty trace) for zero records and for a nil
// snapshot, so a disabled tracer still yields a loadable file.
func WriteChrome(w io.Writer, recs []Record) error {
	tr := ChromeTrace{TraceEvents: ChromeEvents(recs), DisplayTimeUnit: "ms"}
	if tr.TraceEvents == nil {
		tr.TraceEvents = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// FlameRow is one aggregated row of the plain-text flame summary: all
// spans sharing the same root→leaf name path, with their total time
// and bound distance work.
type FlameRow struct {
	Path         string // span names joined with ";"
	Depth        int
	Spans        int
	Nanos        int64
	DistComputed int64
	DistPruned   int64
}

// Flame aggregates records by parent-chain path, sorted by path so the
// output is stable. Spans whose parent is not present in recs (e.g.
// evicted from the ring, or outside a SnapshotSince window) are
// rooted at their own name.
func Flame(recs []Record) []FlameRow {
	byID := make(map[uint64]Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	paths := make(map[string]*FlameRow)
	for _, r := range recs {
		var parts []string
		for cur, ok := r, true; ok; cur, ok = byID[cur.Parent] {
			parts = append(parts, cur.Name)
			if cur.Parent == 0 {
				break
			}
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		path := strings.Join(parts, ";")
		row := paths[path]
		if row == nil {
			row = &FlameRow{Path: path, Depth: len(parts) - 1}
			paths[path] = row
		}
		row.Spans++
		row.Nanos += r.Dur
		if v, ok := r.Attr(AttrDistComputed); ok {
			row.DistComputed += v
		}
		if v, ok := r.Attr(AttrDistPruned); ok {
			row.DistPruned += v
		}
	}
	out := make([]FlameRow, 0, len(paths))
	for _, row := range paths {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// WriteFlame renders the flame summary as aligned plain text. Leading
// path segments are indented to read as a tree.
func WriteFlame(w io.Writer, recs []Record) error {
	rows := Flame(recs)
	if _, err := fmt.Fprintf(w, "%-48s %8s %14s %14s %12s\n",
		"span path", "spans", "time", "dist.computed", "dist.pruned"); err != nil {
		return err
	}
	for _, row := range rows {
		name := row.Path
		if i := strings.LastIndexByte(name, ';'); i >= 0 {
			name = name[i+1:]
		}
		label := strings.Repeat("  ", row.Depth) + name
		if _, err := fmt.Fprintf(w, "%-48s %8d %14s %14d %12d\n",
			label, row.Spans, fmtNanos(row.Nanos), row.DistComputed, row.DistPruned); err != nil {
			return err
		}
	}
	return nil
}

// fmtNanos renders a duration with µs precision, stable across
// locales (no time.Duration fancy formatting surprises for huge
// values).
func fmtNanos(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}
