package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildSample records a deterministic two-batch trace:
//
//	batch(size=5) ─ search(dist=7) ─ apply
//	batch         ─ search
func buildSample(t *testing.T) []Record {
	t.Helper()
	tr := New(Options{Capacity: 32, Clock: fakeClock(100)})
	b1 := tr.Start("core.batch")
	b1.SetInt(AttrBatchSize, 5)
	s1 := b1.Start("core.search")
	s1.SetInt(AttrDistComputed, 7)
	s1.End()
	a1 := b1.Start("core.apply")
	a1.End()
	b1.End()
	b2 := tr.Start("core.batch")
	s2 := b2.Start("core.search")
	s2.End()
	b2.End()
	return tr.Snapshot()
}

// TestChromeSchema validates the trace-event JSON against the schema
// Perfetto requires of "X" complete events: a traceEvents array whose
// entries carry name/cat/ph/ts/dur/pid/tid, with ph == "X",
// non-negative microsecond timestamps, and tree-consistent nesting
// (every child interval inside its parent's).
func TestChromeSchema(t *testing.T) {
	recs := buildSample(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, recs); err != nil {
		t.Fatal(err)
	}

	// Strict decode: unknown structure or wrong field types fail.
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var got ChromeTrace
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("trace JSON does not round-trip the schema: %v", err)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	if len(got.TraceEvents) != len(recs) {
		t.Fatalf("got %d events, want %d", len(got.TraceEvents), len(recs))
	}
	for i, ev := range got.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: ph = %q, want complete event \"X\"", i, ev.Ph)
		}
		if ev.Name == "" || ev.Cat == "" {
			t.Fatalf("event %d: empty name/cat: %+v", i, ev)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %d: negative ts/dur: %+v", i, ev)
		}
		if ev.Pid != 1 || ev.Tid != 1 {
			t.Fatalf("event %d: pid/tid = %d/%d, want 1/1", i, ev.Pid, ev.Tid)
		}
		if i > 0 && ev.Ts < got.TraceEvents[i-1].Ts {
			t.Fatalf("events not sorted by ts at %d", i)
		}
	}
	// The batch event carries its attributes.
	var batches, withSize int
	for _, ev := range got.TraceEvents {
		if ev.Name == "core.batch" {
			batches++
			if ev.Args[AttrBatchSize] == 5 {
				withSize++
			}
		}
	}
	if batches != 2 || withSize != 1 {
		t.Fatalf("batch events = %d (with batch_size: %d), want 2/1", batches, withSize)
	}
	// Raw-JSON spot check: args must be omitted when empty, present otherwise.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var got ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if got.TraceEvents == nil {
		t.Fatal("traceEvents must be [] rather than null")
	}
}

func TestChromeMicrosecondConversion(t *testing.T) {
	recs := []Record{{ID: 1, Name: "x", Start: 2500, Dur: 1500}}
	evs := ChromeEvents(recs)
	if evs[0].Ts != 2.5 || evs[0].Dur != 1.5 {
		t.Fatalf("ts/dur = %v/%v µs, want 2.5/1.5", evs[0].Ts, evs[0].Dur)
	}
}

func TestFlameAggregation(t *testing.T) {
	recs := buildSample(t)
	rows := Flame(recs)
	byPath := map[string]FlameRow{}
	for _, r := range rows {
		byPath[r.Path] = r
	}
	if r := byPath["core.batch"]; r.Spans != 2 || r.Depth != 0 {
		t.Fatalf("core.batch row = %+v", r)
	}
	if r := byPath["core.batch;core.search"]; r.Spans != 2 || r.Depth != 1 || r.DistComputed != 7 {
		t.Fatalf("search row = %+v", r)
	}
	if r := byPath["core.batch;core.apply"]; r.Spans != 1 {
		t.Fatalf("apply row = %+v", r)
	}
	// Sorted by path.
	for i := 1; i < len(rows); i++ {
		if rows[i].Path < rows[i-1].Path {
			t.Fatal("flame rows not sorted by path")
		}
	}
}

func TestFlameOrphanRootsAtSelf(t *testing.T) {
	// Parent 99 is not in the snapshot (evicted): the span roots at its
	// own name instead of being lost.
	recs := []Record{{ID: 5, Parent: 99, Name: "core.fsync", Dur: 10}}
	rows := Flame(recs)
	if len(rows) != 1 || rows[0].Path != "core.fsync" || rows[0].Depth != 0 {
		t.Fatalf("orphan row = %+v", rows)
	}
}

func TestWriteFlameRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFlame(&buf, buildSample(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"span path", "core.batch", "core.search", "dist.computed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flame output missing %q:\n%s", want, out)
		}
	}
	// Children indent under parents.
	if !strings.Contains(out, "  core.search") {
		t.Fatalf("child span not indented:\n%s", out)
	}
}
