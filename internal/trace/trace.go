// Package trace is a low-overhead hierarchical span tracer for the
// summarization pipeline. A Tracer records batch → phase → operation
// spans into a bounded ring buffer; spans carry integer attributes
// (batch sizes, bubble IDs, bytes fsynced) and, when bound to a
// vecmath.Counter, the exact distance-computation delta that occurred
// between Start and End. Recorded spans export as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing) or as a plain-text
// flame summary (see export.go).
//
// The tracer is designed to be left wired in production code paths:
//
//   - A nil *Tracer is a valid no-op: Start returns a nil *Span and
//     every Span method on nil is a no-op, so callers never branch on
//     "is tracing enabled".
//   - Span records are only materialised at End; an abandoned span
//     costs nothing but its allocation.
//   - The ring buffer is bounded (DefaultCapacity records unless
//     configured): overflow evicts the oldest record and increments
//     Dropped, it never grows or blocks.
//
// Spans are intended to be started and ended on a single goroutine
// (the coordinator of the two-phase pipeline); the ring itself is
// mutex-guarded, so concurrent spans from different goroutines and
// concurrent Snapshot calls (e.g. the /debug/trace endpoint) are safe.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"incbubbles/internal/vecmath"
)

// DefaultCapacity is the span-record ring size used when
// Options.Capacity is zero. At ~100 spans per applied batch this
// retains on the order of the last 80 batches.
const DefaultCapacity = 8192

// Canonical attribute keys. Exporters and tests key on these; span
// producers should prefer them over ad-hoc strings.
const (
	// AttrDistComputed and AttrDistPruned are appended automatically
	// at End by spans bound to a vecmath.Counter: the delta of full
	// distance computations (resp. triangle-inequality prunings)
	// attributed to the span.
	AttrDistComputed = "dist_computed"
	AttrDistPruned   = "dist_pruned"

	AttrBatchSize = "batch_size" // updates in the batch
	AttrOrdinal   = "ordinal"    // batch ordinal
	AttrBubble    = "bubble"     // bubble index the operation targets
	AttrBubbleB   = "bubble_b"   // second bubble (merge recipient, split sibling)
	AttrBytes     = "bytes"      // bytes written or fsynced
	AttrCount     = "count"      // generic cardinality (objects, records, rounds)
	// AttrRequestID and AttrQueueWait decorate the server.ingest root
	// span the serving layer starts per ingest request: the minted
	// request ID and the nanoseconds the batch sat in the tenant's
	// bounded queue before its worker picked it up.
	AttrRequestID = "request_id"
	AttrQueueWait = "queue_wait_ns"
	// AttrSpecHit marks a pipelined batch span: 1 when the speculative
	// phase-1 result was accepted, 0 when it was stale and the search
	// reran against live state. Spans of the pipelined path:
	// core.search.spec (the speculative search, bound to the view's
	// counter), core.pipeline.stall (scheduler time blocked waiting for a
	// speculation), wal.group_commit (one shared fsync covering a queue
	// of appended records).
	AttrSpecHit = "spec_hit"
)

// Options configures a Tracer.
type Options struct {
	// Capacity bounds the span-record ring. DefaultCapacity when <= 0.
	Capacity int
	// Clock returns monotonic nanoseconds. Defaults to a process-
	// monotonic wall clock; tests inject a fake for deterministic
	// timestamps.
	Clock func() int64
}

// Attr is one integer span attribute.
type Attr struct {
	Key string
	Val int64
}

// Record is one completed span as stored in the ring.
type Record struct {
	ID     uint64 // unique per tracer, 1-based
	Parent uint64 // ID of the parent span, 0 for roots
	Name   string
	Start  int64 // nanoseconds on the tracer clock
	Dur    int64 // nanoseconds
	Attrs  []Attr
}

// Tracer records completed spans into a bounded ring.
type Tracer struct {
	clock   func() int64
	nextID  atomic.Uint64
	dropped atomic.Uint64

	mu   sync.Mutex
	buf  []Record
	head int // index of the oldest record
	n    int // live records
}

var processStart = time.Now() //lint:allow seededrng trace timestamps are observability, not simulation state

func monotonicNanos() int64 { return int64(time.Since(processStart)) }

// New builds a Tracer. See Options for defaults.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.Clock == nil {
		opts.Clock = monotonicNanos
	}
	return &Tracer{clock: opts.Clock, buf: make([]Record, opts.Capacity)}
}

// Now returns the current tracer clock reading, or 0 on a nil Tracer.
// Use it to bracket SnapshotSince windows.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Capacity reports the ring size, 0 on a nil Tracer.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Dropped reports how many completed spans were evicted from the ring
// to make room for newer ones.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len reports the number of live records in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Reset discards all recorded spans and the dropped counter. Span IDs
// keep advancing so records from before and after never collide.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.head, t.n = 0, 0
	t.mu.Unlock()
	t.dropped.Store(0)
}

// Snapshot copies the live records, oldest first.
func (t *Tracer) Snapshot() []Record {
	return t.SnapshotSince(-1 << 62)
}

// SnapshotSince copies the live records whose Start is >= ts, oldest
// first. Bracket a capture window with Now:
//
//	t0 := tr.Now()
//	... traced work ...
//	recs := tr.SnapshotSince(t0)
func (t *Tracer) SnapshotSince(ts int64) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, t.n)
	for i := 0; i < t.n; i++ {
		r := t.at(i)
		if r.Start >= ts {
			out = append(out, r)
		}
	}
	return out
}

// at returns the i-th oldest live record; caller holds t.mu.
func (t *Tracer) at(i int) Record {
	idx := t.head + i
	if idx >= len(t.buf) {
		idx -= len(t.buf)
	}
	return t.buf[idx]
}

// record appends a completed span, evicting the oldest on overflow.
func (t *Tracer) record(r Record) {
	t.mu.Lock()
	if t.n < len(t.buf) {
		idx := t.head + t.n
		if idx >= len(t.buf) {
			idx -= len(t.buf)
		}
		t.buf[idx] = r
		t.n++
		t.mu.Unlock()
		return
	}
	t.buf[t.head] = r
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}

// Span is one in-flight traced operation. All methods are no-ops on a
// nil receiver, so spans can be threaded through code paths that may
// run untraced. A Span must be used from a single goroutine.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  int64

	ctr    *vecmath.Counter
	c0, p0 uint64

	attrs []Attr
	ended bool
}

// Start begins a root span, or returns nil on a nil Tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, id: t.nextID.Add(1), name: name, start: t.clock()}
}

// Start begins a child span of s, or returns nil on a nil Span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	sp := s.tr.Start(name)
	sp.parent = s.id
	return sp
}

// Bind snapshots c so that End records the span's distance-computation
// delta as AttrDistComputed / AttrDistPruned attributes. Bind leaf
// spans only — binding a parent whose children are also bound would
// double-count the children's work in any attribute sum. Returns s.
func (s *Span) Bind(c *vecmath.Counter) *Span {
	if s == nil || c == nil {
		return s
	}
	s.ctr = c
	s.c0, s.p0 = c.Snapshot()
	return s
}

// SetInt attaches an integer attribute. Later values for the same key
// are appended, not merged; exporters keep the last.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// End completes the span and commits it to the ring. End is
// idempotent; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.tr.clock()
	if s.ctr != nil {
		c1, p1 := s.ctr.Snapshot()
		s.attrs = append(s.attrs,
			Attr{Key: AttrDistComputed, Val: int64(c1 - s.c0)},
			Attr{Key: AttrDistPruned, Val: int64(p1 - s.p0)},
		)
	}
	s.tr.record(Record{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    end - s.start,
		Attrs:  s.attrs,
	})
}

// ctxKey is the context key for span propagation across package
// boundaries (core hands its durability span to the WAL this way).
type ctxKey struct{}

// ContextWith returns ctx carrying sp. A nil sp returns ctx unchanged.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil. The caller does
// not own the returned span and must not End it; child spans started
// from it are owned as usual.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// AttrMap flattens a record's attribute list into a map, keeping the
// last value per key.
func (r Record) AttrMap() map[string]int64 {
	if len(r.Attrs) == 0 {
		return nil
	}
	m := make(map[string]int64, len(r.Attrs))
	for _, a := range r.Attrs {
		m[a.Key] = a.Val
	}
	return m
}

// Attr returns the last value recorded for key and whether it exists.
func (r Record) Attr(key string) (int64, bool) {
	for i := len(r.Attrs) - 1; i >= 0; i-- {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Val, true
		}
	}
	return 0, false
}
