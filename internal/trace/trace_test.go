package trace

import (
	"context"
	"testing"

	"incbubbles/internal/vecmath"
)

// fakeClock returns an injectable deterministic clock advancing by
// step on every reading.
func fakeClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	child := sp.Start("child")
	if child != nil {
		t.Fatalf("nil span Start = %v, want nil", child)
	}
	sp.Bind(&vecmath.Counter{})
	sp.SetInt("k", 1)
	sp.End()
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", got)
	}
	if tr.Now() != 0 || tr.Dropped() != 0 || tr.Capacity() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer accessors must return zero values")
	}
	tr.Reset() // must not panic
}

func TestSpanRecording(t *testing.T) {
	tr := New(Options{Capacity: 16, Clock: fakeClock(10)})
	root := tr.Start("batch") // start=10
	root.SetInt(AttrBatchSize, 42)
	child := root.Start("search") // start=20
	child.End()                   // end=30, dur=10
	root.End()                    // end=40, dur=30

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Records commit at End: child first.
	if recs[0].Name != "search" || recs[1].Name != "batch" {
		t.Fatalf("record order = %q,%q", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child.Parent = %d, want %d", recs[0].Parent, recs[1].ID)
	}
	if recs[1].Parent != 0 {
		t.Fatalf("root.Parent = %d, want 0", recs[1].Parent)
	}
	if recs[0].Start != 20 || recs[0].Dur != 10 {
		t.Fatalf("child start/dur = %d/%d, want 20/10", recs[0].Start, recs[0].Dur)
	}
	if recs[1].Start != 10 || recs[1].Dur != 30 {
		t.Fatalf("root start/dur = %d/%d, want 10/30", recs[1].Start, recs[1].Dur)
	}
	if v, ok := recs[1].Attr(AttrBatchSize); !ok || v != 42 {
		t.Fatalf("batch_size attr = %d,%v", v, ok)
	}
	// Child nests inside the root interval.
	if recs[0].Start < recs[1].Start || recs[0].Start+recs[0].Dur > recs[1].Start+recs[1].Dur {
		t.Fatal("child span not contained in parent interval")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Options{Capacity: 4, Clock: fakeClock(1)})
	sp := tr.Start("x")
	sp.End()
	sp.End()
	sp.End()
	if n := tr.Len(); n != 1 {
		t.Fatalf("Len = %d after repeated End, want 1", n)
	}
}

func TestBindRecordsCounterDeltas(t *testing.T) {
	tr := New(Options{Capacity: 4, Clock: fakeClock(1)})
	var c vecmath.Counter
	c.Distance(vecmath.Point{0, 0}, vecmath.Point{1, 1}) // pre-existing work
	sp := tr.Start("search").Bind(&c)
	c.Distance(vecmath.Point{0, 0}, vecmath.Point{1, 1})
	c.Distance(vecmath.Point{0, 0}, vecmath.Point{2, 2})
	c.PruneN(3)
	sp.End()
	rec := tr.Snapshot()[0]
	if v, _ := rec.Attr(AttrDistComputed); v != 2 {
		t.Fatalf("dist_computed = %d, want 2 (delta, not absolute)", v)
	}
	if v, _ := rec.Attr(AttrDistPruned); v != 3 {
		t.Fatalf("dist_pruned = %d, want 3", v)
	}
}

func TestRingOverflowCountsDrops(t *testing.T) {
	tr := New(Options{Capacity: 4, Clock: fakeClock(1)})
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Survivors are the newest records, oldest first.
	recs := tr.Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].ID <= recs[i-1].ID {
			t.Fatalf("snapshot not oldest-first: IDs %d then %d", recs[i-1].ID, recs[i].ID)
		}
	}
	if recs[len(recs)-1].ID != 10 {
		t.Fatalf("newest surviving ID = %d, want 10", recs[len(recs)-1].ID)
	}
}

func TestSnapshotSince(t *testing.T) {
	tr := New(Options{Capacity: 16, Clock: fakeClock(10)})
	tr.Start("old").End()
	t0 := tr.Now()
	tr.Start("new").End()
	recs := tr.SnapshotSince(t0)
	if len(recs) != 1 || recs[0].Name != "new" {
		t.Fatalf("SnapshotSince = %+v, want only the post-t0 span", recs)
	}
}

func TestReset(t *testing.T) {
	tr := New(Options{Capacity: 2, Clock: fakeClock(1)})
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d, want 0/0", tr.Len(), tr.Dropped())
	}
	tr.Start("after").End()
	if recs := tr.Snapshot(); len(recs) != 1 || recs[0].Name != "after" {
		t.Fatalf("post-Reset snapshot = %+v", recs)
	}
}

func TestDefaultClockMonotonic(t *testing.T) {
	tr := New(Options{Capacity: 4})
	a := tr.Now()
	b := tr.Now()
	if b < a {
		t.Fatalf("default clock went backwards: %d then %d", a, b)
	}
	if tr.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", tr.Capacity())
	}
	if New(Options{}).Capacity() != DefaultCapacity {
		t.Fatalf("zero Options capacity != DefaultCapacity")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if sp := FromContext(ctx); sp != nil {
		t.Fatalf("FromContext(empty) = %v", sp)
	}
	if got := ContextWith(ctx, nil); got != ctx {
		t.Fatal("ContextWith(nil span) must return ctx unchanged")
	}
	tr := New(Options{Capacity: 4, Clock: fakeClock(1)})
	sp := tr.Start("root")
	ctx2 := ContextWith(ctx, sp)
	if got := FromContext(ctx2); got != sp {
		t.Fatalf("FromContext = %v, want the stored span", got)
	}
	sp.End()
}

func TestConcurrentSpansAndSnapshots(t *testing.T) {
	tr := New(Options{Capacity: 64})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.Start("g")
				sp.SetInt(AttrCount, int64(i))
				sp.End()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		tr.Snapshot()
		tr.Len()
		tr.Dropped()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want full ring", tr.Len())
	}
	if tr.Dropped() != 4*200-64 {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), 4*200-64)
	}
}

func TestAttrMapKeepsLastValue(t *testing.T) {
	tr := New(Options{Capacity: 4, Clock: fakeClock(1)})
	sp := tr.Start("x")
	sp.SetInt("k", 1)
	sp.SetInt("k", 2)
	sp.End()
	rec := tr.Snapshot()[0]
	if m := rec.AttrMap(); m["k"] != 2 {
		t.Fatalf("AttrMap k = %d, want last write 2", m["k"])
	}
	if v, ok := rec.Attr("k"); !ok || v != 2 {
		t.Fatalf("Attr k = %d,%v", v, ok)
	}
	if _, ok := rec.Attr("missing"); ok {
		t.Fatal("Attr(missing) reported ok")
	}
}
