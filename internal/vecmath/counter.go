package vecmath

import (
	"math"
	"sync/atomic"
)

// Counter counts Euclidean distance computations. The paper's efficiency
// results (Figures 10 and 11) are expressed in numbers of distance
// calculations saved, so every code path whose cost matters routes distance
// evaluation through a Counter. The zero value is ready to use. Counting is
// atomic so concurrent experiment repetitions may share one counter.
type Counter struct {
	computed uint64
	pruned   uint64
}

// Distance computes the Euclidean distance between p and q and counts one
// computation.
func (c *Counter) Distance(p, q Point) float64 {
	atomic.AddUint64(&c.computed, 1)
	return math.Sqrt(SquaredDistance(p, q))
}

// SquaredDistance computes the squared distance, counting one computation.
// A squared distance has the same cost profile as a full distance (one pass
// over the coordinates), so it counts identically.
func (c *Counter) SquaredDistance(p, q Point) float64 {
	atomic.AddUint64(&c.computed, 1)
	return SquaredDistance(p, q)
}

// Prune records that one distance computation was avoided by a triangle-
// inequality comparison (a lookup plus comparison rather than a coordinate
// scan).
func (c *Counter) Prune() { atomic.AddUint64(&c.pruned, 1) }

// PruneN records n avoided computations at once.
func (c *Counter) PruneN(n int) {
	if n > 0 {
		atomic.AddUint64(&c.pruned, uint64(n))
	}
}

// Computed returns the number of distance computations performed.
func (c *Counter) Computed() uint64 { return atomic.LoadUint64(&c.computed) }

// Pruned returns the number of distance computations avoided.
func (c *Counter) Pruned() uint64 { return atomic.LoadUint64(&c.pruned) }

// Total returns computed + pruned: the number of distance computations a
// naive implementation without pruning would have performed.
func (c *Counter) Total() uint64 { return c.Computed() + c.Pruned() }

// PruneFraction returns the fraction of would-be computations that were
// avoided, in [0,1]. It returns 0 when nothing was counted.
func (c *Counter) PruneFraction() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Pruned()) / float64(t)
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	atomic.StoreUint64(&c.computed, 0)
	atomic.StoreUint64(&c.pruned, 0)
}

// Snapshot returns the current (computed, pruned) pair.
func (c *Counter) Snapshot() (computed, pruned uint64) {
	return c.Computed(), c.Pruned()
}
