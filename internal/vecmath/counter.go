package vecmath

import (
	"math"
	"sync/atomic"
)

// Counter counts Euclidean distance computations. The paper's efficiency
// results (Figures 10 and 11) are expressed in numbers of distance
// calculations saved, so every code path whose cost matters routes distance
// evaluation through a Counter. The zero value is ready to use. Counting is
// atomic so concurrent experiment repetitions may share one counter.
type Counter struct {
	computed uint64
	pruned   uint64
}

// Distance computes the Euclidean distance between p and q and counts one
// computation.
//lint:hotpath
func (c *Counter) Distance(p, q Point) float64 {
	atomic.AddUint64(&c.computed, 1)
	return math.Sqrt(SquaredDistance(p, q))
}

// SquaredDistance computes the squared distance, counting one computation.
// A squared distance has the same cost profile as a full distance (one pass
// over the coordinates), so it counts identically.
//lint:hotpath
func (c *Counter) SquaredDistance(p, q Point) float64 {
	atomic.AddUint64(&c.computed, 1)
	return SquaredDistance(p, q)
}

// Prune records that one distance computation was avoided by a triangle-
// inequality comparison (a lookup plus comparison rather than a coordinate
// scan).
//lint:hotpath
func (c *Counter) Prune() { atomic.AddUint64(&c.pruned, 1) }

// PruneN records n avoided computations at once.
//lint:hotpath
func (c *Counter) PruneN(n int) {
	if n > 0 {
		atomic.AddUint64(&c.pruned, uint64(n))
	}
}

// Computed returns the number of distance computations performed.
func (c *Counter) Computed() uint64 { return atomic.LoadUint64(&c.computed) }

// Pruned returns the number of distance computations avoided.
func (c *Counter) Pruned() uint64 { return atomic.LoadUint64(&c.pruned) }

// Total returns computed + pruned: the number of distance computations a
// naive implementation without pruning would have performed.
func (c *Counter) Total() uint64 { return c.Computed() + c.Pruned() }

// PruneFraction returns the fraction of would-be computations that were
// avoided, in [0,1]. It returns 0 when nothing was counted.
func (c *Counter) PruneFraction() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Pruned()) / float64(t)
}

// Add merges externally accumulated counts into the counter — the merge
// point for the per-worker Tally values of a parallel assignment phase.
//lint:hotpath
func (c *Counter) Add(computed, pruned uint64) {
	atomic.AddUint64(&c.computed, computed)
	atomic.AddUint64(&c.pruned, pruned)
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	atomic.StoreUint64(&c.computed, 0)
	atomic.StoreUint64(&c.pruned, 0)
}

// Snapshot returns the current (computed, pruned) pair.
func (c *Counter) Snapshot() (computed, pruned uint64) {
	return c.Computed(), c.Pruned()
}

// Tally is a plain, non-atomic distance tally owned by a single goroutine.
// The parallel assignment pipeline gives every worker its own Tally and
// folds the tallies into the shared Counter (AddTo) when each worker's
// chunk completes, so the per-point search loop avoids cross-core
// contention on the Counter's cache line while the merged totals stay
// exactly what a serial run would have counted.
type Tally struct {
	Computed uint64
	Pruned   uint64
}

// Distance computes the Euclidean distance between p and q and tallies one
// computation.
//lint:hotpath
func (t *Tally) Distance(p, q Point) float64 {
	t.Computed++
	return math.Sqrt(SquaredDistance(p, q))
}

// SquaredDistance computes the squared distance, tallying one computation.
//lint:hotpath
func (t *Tally) SquaredDistance(p, q Point) float64 {
	t.Computed++
	return SquaredDistance(p, q)
}

// Prune tallies one avoided distance computation.
//lint:hotpath
func (t *Tally) Prune() { t.Pruned++ }

// PruneN tallies n avoided computations at once.
//lint:hotpath
func (t *Tally) PruneN(n int) {
	if n > 0 {
		t.Pruned += uint64(n)
	}
}

// Total returns computed + pruned.
func (t *Tally) Total() uint64 { return t.Computed + t.Pruned }

// AddTo folds the tally into c and zeroes the tally.
//lint:hotpath
func (t *Tally) AddTo(c *Counter) {
	c.Add(t.Computed, t.Pruned)
	*t = Tally{}
}
