package vecmath

import (
	"sync"
	"testing"
)

func TestCounterCounts(t *testing.T) {
	var c Counter
	p, q := Point{0, 0}, Point{3, 4}
	if d := c.Distance(p, q); d != 5 {
		t.Fatalf("Distance=%v", d)
	}
	if d := c.SquaredDistance(p, q); d != 25 {
		t.Fatalf("SquaredDistance=%v", d)
	}
	if got := c.Computed(); got != 2 {
		t.Fatalf("Computed=%d want 2", got)
	}
	c.Prune()
	c.PruneN(3)
	c.PruneN(0)  // no-op
	c.PruneN(-1) // no-op
	if got := c.Pruned(); got != 4 {
		t.Fatalf("Pruned=%d want 4", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("Total=%d want 6", got)
	}
	if f := c.PruneFraction(); f != 4.0/6.0 {
		t.Fatalf("PruneFraction=%v", f)
	}
	comp, pr := c.Snapshot()
	if comp != 2 || pr != 4 {
		t.Fatalf("Snapshot=(%d,%d)", comp, pr)
	}
	c.Reset()
	if c.Total() != 0 || c.PruneFraction() != 0 {
		t.Fatalf("Reset did not zero counter")
	}
}

func TestCounterConcurrency(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	p, q := Point{0}, Point{1}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Distance(p, q)
				c.Prune()
			}
		}()
	}
	wg.Wait()
	if c.Computed() != 8000 || c.Pruned() != 8000 {
		t.Fatalf("concurrent counts off: computed=%d pruned=%d", c.Computed(), c.Pruned())
	}
}
