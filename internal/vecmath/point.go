// Package vecmath provides dense d-dimensional point arithmetic and the
// instrumented distance computations that the rest of the library is built
// on. All distance *calculations* (as opposed to comparisons) can be counted
// through a Counter so that experiments can report pruning factors the same
// way the paper does (Figures 10 and 11).
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// Point is a dense d-dimensional vector. The zero value is a 0-dimensional
// point. Points are plain slices so callers can construct them with literals.
type Point []float64

// ErrDimensionMismatch is returned by operations that require operands of
// equal dimensionality.
var ErrDimensionMismatch = errors.New("vecmath: dimension mismatch")

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		//lint:allow floatsafe Equal is exact by contract; tolerance comparison lives in ApproxEqual
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q as a new point. It panics on dimension mismatch; the
// library only calls it on points drawn from the same database.
func (p Point) Add(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p − q as a new point.
func (p Point) Sub(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns s·p as a new point.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// AddInPlace accumulates q into p.
func (p Point) AddInPlace(q Point) {
	mustSameDim(p, q)
	for i := range p {
		p[i] += q[i]
	}
}

// SubInPlace subtracts q from p in place.
func (p Point) SubInPlace(q Point) {
	mustSameDim(p, q)
	for i := range p {
		p[i] -= q[i]
	}
}

// Dot returns the inner product of p and q.
//lint:hotpath
func (p Point) Dot(q Point) float64 {
	mustSameDim(p, q)
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of p.
//lint:hotpath
func (p Point) Norm2() float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return s
}

// Norm returns the Euclidean norm of p.
//lint:hotpath
func (p Point) Norm() float64 { return math.Sqrt(p.Norm2()) }

// IsFinite reports whether every coordinate of p is a finite number.
func (p Point) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders p compactly for logs and test failures.
func (p Point) String() string {
	return fmt.Sprintf("%.4g", []float64(p))
}

func mustSameDim(p, q Point) {
	if len(p) != len(q) {
		//lint:allow nopanic mixed dimensionalities are a programmer error; the arithmetic API documents the panic
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(p), len(q)))
	}
}

// SquaredDistance returns the squared Euclidean distance between p and q
// without touching any counter. Use Counter.Distance in code paths whose
// distance-computation volume is part of a reported experiment.
//lint:hotpath
func SquaredDistance(p, q Point) float64 {
	mustSameDim(p, q)
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between p and q.
//lint:hotpath
func Distance(p, q Point) float64 { return math.Sqrt(SquaredDistance(p, q)) }

// ManhattanDistance returns the L1 distance between p and q. It is not used
// by the core algorithms (the paper works in Euclidean space) but is exposed
// for downstream users of the summaries.
//lint:hotpath
func ManhattanDistance(p, q Point) float64 {
	mustSameDim(p, q)
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s
}

// ChebyshevDistance returns the L∞ distance between p and q.
//lint:hotpath
func ChebyshevDistance(p, q Point) float64 {
	mustSameDim(p, q)
	var s float64
	for i := range p {
		d := math.Abs(p[i] - q[i])
		if d > s {
			s = d
		}
	}
	return s
}

// Mean returns the centroid of pts. It returns nil for an empty slice.
func Mean(pts []Point) Point {
	if len(pts) == 0 {
		return nil
	}
	m := make(Point, len(pts[0]))
	for _, p := range pts {
		m.AddInPlace(p)
	}
	return m.Scale(1 / float64(len(pts)))
}

// Lerp returns the point (1−t)·p + t·q.
func Lerp(p, q Point, t float64) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = (1-t)*p[i] + t*q[i]
	}
	return r
}
