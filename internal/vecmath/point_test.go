package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone shares storage: p=%v", p)
	}
	if !p.Equal(Point{1, 2, 3}) {
		t.Fatalf("original mutated: %v", p)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
		{nil, Point{}, true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal(%v,%v)=%v want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 5, 6}
	if got := p.Add(q); !got.Equal(Point{5, 7, 9}) {
		t.Errorf("Add=%v", got)
	}
	if got := q.Sub(p); !got.Equal(Point{3, 3, 3}) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4, 6}) {
		t.Errorf("Scale=%v", got)
	}
	// Operands untouched.
	if !p.Equal(Point{1, 2, 3}) || !q.Equal(Point{4, 5, 6}) {
		t.Errorf("operands mutated: p=%v q=%v", p, q)
	}
}

func TestInPlaceOps(t *testing.T) {
	p := Point{1, 1}
	p.AddInPlace(Point{2, 3})
	if !p.Equal(Point{3, 4}) {
		t.Fatalf("AddInPlace=%v", p)
	}
	p.SubInPlace(Point{1, 1})
	if !p.Equal(Point{2, 3}) {
		t.Fatalf("SubInPlace=%v", p)
	}
}

func TestDotNorm(t *testing.T) {
	p := Point{3, 4}
	if p.Dot(p) != 25 {
		t.Errorf("Dot=%v", p.Dot(p))
	}
	if p.Norm2() != 25 {
		t.Errorf("Norm2=%v", p.Norm2())
	}
	if p.Norm() != 5 {
		t.Errorf("Norm=%v", p.Norm())
	}
}

func TestDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := Distance(p, q); d != 5 {
		t.Errorf("Distance=%v", d)
	}
	if d := SquaredDistance(p, q); d != 25 {
		t.Errorf("SquaredDistance=%v", d)
	}
	if d := ManhattanDistance(p, q); d != 7 {
		t.Errorf("Manhattan=%v", d)
	}
	if d := ChebyshevDistance(p, q); d != 4 {
		t.Errorf("Chebyshev=%v", d)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on dimension mismatch")
		}
	}()
	Distance(Point{1}, Point{1, 2})
}

func TestMean(t *testing.T) {
	if Mean(nil) != nil {
		t.Fatalf("Mean(nil) != nil")
	}
	m := Mean([]Point{{0, 0}, {2, 4}})
	if !m.Equal(Point{1, 2}) {
		t.Fatalf("Mean=%v", m)
	}
}

func TestLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{10, 20}
	if got := Lerp(p, q, 0); !got.Equal(p) {
		t.Errorf("Lerp t=0: %v", got)
	}
	if got := Lerp(p, q, 1); !got.Equal(q) {
		t.Errorf("Lerp t=1: %v", got)
	}
	if got := Lerp(p, q, 0.5); !got.Equal(Point{5, 10}) {
		t.Errorf("Lerp t=0.5: %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Errorf("finite point reported non-finite")
	}
	if (Point{1, math.NaN()}).IsFinite() {
		t.Errorf("NaN point reported finite")
	}
	if (Point{math.Inf(1)}).IsFinite() {
		t.Errorf("Inf point reported finite")
	}
}

func randomPoint(r *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = r.NormFloat64() * 10
	}
	return p
}

// Property: triangle inequality holds for Distance.
func TestTriangleInequalityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(16)
		a, b, c := randomPoint(r, d), randomPoint(r, d), randomPoint(r, d)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is symmetric and non-negative, zero iff identical.
func TestDistanceMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(16)
		a, b := randomPoint(rr, d), randomPoint(rr, d)
		if Distance(a, b) != Distance(b, a) {
			return false
		}
		if Distance(a, b) < 0 {
			return false
		}
		return Distance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: squared distance equals ‖a−b‖² computed via vector ops.
func TestSquaredDistanceConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(16)
		a, b := randomPoint(rr, d), randomPoint(rr, d)
		return almostEqual(SquaredDistance(a, b), a.Sub(b).Norm2(), 1e-6*(1+a.Norm2()+b.Norm2()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	if s := (Point{1.5, 2}).String(); s == "" {
		t.Fatal("empty String()")
	}
}
