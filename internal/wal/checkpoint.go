package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/vecmath"
)

// Checkpoint file layout: checkpointMagic, then u64 batch ordinal, u64
// total-rebuilt counter, u32 dimensionality, u64 next point ID, u64
// record count, the database records sorted by ID (u64 id, i64 label, dim
// float64s each), u32 snapshot length and the bubble snapshot (the JSON
// the bubble codec round-trips exactly), and finally a u32 CRC-32 over
// everything after the magic. The whole file is written to a temp name,
// fsynced, and renamed into place, so a checkpoint either exists in full
// or not at all — the CRC catches the remaining failure mode of a rename
// that outran an interrupted data sync.
const checkpointMagic = "IBCKPT01"

// ErrBadCheckpoint reports a checkpoint file recovery must not trust.
var ErrBadCheckpoint = errors.New("wal: corrupt checkpoint")

// checkpointData is one decoded checkpoint.
type checkpointData struct {
	ordinal      uint64 // batches applied when it was taken
	totalRebuilt uint64
	dim          int
	nextID       dataset.PointID
	recs         []dataset.Record
	snapshot     []byte
}

// Fingerprint returns a canonical byte encoding of s — its database
// (ID-sorted) and bubble snapshot — for bit-for-bit state comparison in
// recovery tests and experiments. Two summarizers fingerprint equal iff
// a checkpoint of one restores the other exactly.
func Fingerprint(s *core.Summarizer) ([]byte, error) {
	return encodeCheckpoint(s)
}

// encodeCheckpoint captures s — database and bubble snapshot — at its
// current batch ordinal.
func encodeCheckpoint(s *core.Summarizer) ([]byte, error) {
	db := s.DB()
	recs := db.Snapshot()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	var snap bytes.Buffer
	if err := s.Set().Save(&snap); err != nil {
		return nil, err
	}
	dim := db.Dim()
	out := make([]byte, 0, len(checkpointMagic)+8+8+4+8+8+len(recs)*(16+dim*8)+4+snap.Len()+4)
	out = append(out, checkpointMagic...)
	out = appendUint64(out, uint64(s.Batches()))
	out = appendUint64(out, uint64(s.TotalRebuilt()))
	out = appendUint32(out, uint32(dim))
	out = appendUint64(out, uint64(db.NextID()))
	out = appendUint64(out, uint64(len(recs)))
	for _, rec := range recs {
		out = appendUint64(out, uint64(rec.ID))
		out = appendUint64(out, uint64(int64(rec.Label)))
		for _, v := range rec.P {
			out = appendUint64(out, math.Float64bits(v))
		}
	}
	out = appendUint32(out, uint32(snap.Len()))
	out = append(out, snap.Bytes()...)
	return appendUint32(out, crc32.ChecksumIEEE(out[len(checkpointMagic):])), nil
}

// decodeCheckpoint validates and parses checkpoint bytes. Every failure
// wraps ErrBadCheckpoint so recovery can fall back to an older file.
func decodeCheckpoint(data []byte) (*checkpointData, error) {
	if len(data) < len(checkpointMagic)+8+8+4+8+8+4+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCheckpoint, len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	body := data[len(checkpointMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadCheckpoint)
	}
	cp := &checkpointData{
		ordinal:      binary.LittleEndian.Uint64(body),
		totalRebuilt: binary.LittleEndian.Uint64(body[8:]),
		dim:          int(binary.LittleEndian.Uint32(body[16:])),
		nextID:       dataset.PointID(binary.LittleEndian.Uint64(body[20:])),
	}
	if cp.dim <= 0 {
		return nil, fmt.Errorf("%w: dimensionality %d", ErrBadCheckpoint, cp.dim)
	}
	numRecs := binary.LittleEndian.Uint64(body[28:])
	off := 36
	recBytes := uint64(16 + cp.dim*8)
	if numRecs > uint64(len(body)-off)/recBytes {
		return nil, fmt.Errorf("%w: %d records in %d bytes", ErrBadCheckpoint, numRecs, len(body)-off)
	}
	cp.recs = make([]dataset.Record, 0, numRecs)
	for i := uint64(0); i < numRecs; i++ {
		id := dataset.PointID(binary.LittleEndian.Uint64(body[off:]))
		label := int(int64(binary.LittleEndian.Uint64(body[off+8:])))
		off += 16
		p := make(vecmath.Point, cp.dim)
		for d := 0; d < cp.dim; d++ {
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		cp.recs = append(cp.recs, dataset.Record{ID: id, P: p, Label: label})
	}
	if off+4 > len(body) {
		return nil, fmt.Errorf("%w: missing snapshot length", ErrBadCheckpoint)
	}
	snapLen := binary.LittleEndian.Uint32(body[off:])
	off += 4
	if int(snapLen) != len(body)-off {
		return nil, fmt.Errorf("%w: snapshot length %d != %d remaining", ErrBadCheckpoint, snapLen, len(body)-off)
	}
	cp.snapshot = append([]byte(nil), body[off:]...)
	return cp, nil
}

// restoreDB reconstructs the database a checkpoint captured.
func (cp *checkpointData) restoreDB() (*dataset.DB, error) {
	db, err := dataset.New(cp.dim)
	if err != nil {
		return nil, err
	}
	for _, rec := range cp.recs {
		if err := db.InsertWithID(rec); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadCheckpoint, rec.ID, err)
		}
	}
	if err := db.SetNextID(cp.nextID); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return db, nil
}
