package wal_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/pipeline"
	"incbubbles/internal/synth"
	"incbubbles/internal/wal"
)

// The pipelined legs of the crash matrix: the same kill-resume-compare
// property as TestCrashRecoveryMatrix, but the dying workload runs
// through the group-commit pipeline (burst submission, shared fsyncs,
// async checkpoints), and the kill lands on the five failpoints only
// reachable in group mode. Recovery is always serial — a crashed
// pipelined process must be resumable by the plain replay path — and the
// final state must be bit-identical to an uninterrupted serial run.
//
// This file is an external test package: the in-package wal tests cannot
// import internal/pipeline (import cycle), so the harness drives the
// exported API only.

const crashEnvExt = "INCBUBBLES_CRASH"

type pipeFixture struct {
	initial *dataset.DB
	batches []dataset.Batch
}

func makePipeFixture(t *testing.T, points, batches int) *pipeFixture {
	t.Helper()
	sc, err := synth.NewScenario(synth.Config{
		Kind: synth.Complex, InitialPoints: points, Batches: batches, Seed: 21,
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	initial := sc.DB().Clone()
	bs := make([]dataset.Batch, batches)
	for i := range bs {
		if bs[i], err = sc.NextBatch(); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return &pipeFixture{initial: initial, batches: bs}
}

func serialCoreOpts() core.Options {
	return core.Options{NumBubbles: 12, UseTriangleInequality: true, Seed: 5}
}

func pipedCoreOpts() core.Options {
	o := serialCoreOpts()
	o.Pipeline = &core.PipelineOptions{Depth: 2}
	return o
}

// serialReference runs the workload through the serial durable path and
// returns its fingerprint — the target every pipelined crash must
// converge back to.
func serialReference(t *testing.T, fx *pipeFixture) []byte {
	t.Helper()
	db := fx.initial.Clone()
	s, l, err := wal.New(db, serialCoreOpts(), wal.Options{Dir: t.TempDir(), CheckpointEvery: 2, KeepCheckpoints: 2})
	if err != nil {
		t.Fatalf("wal.New: %v", err)
	}
	for i, b := range fx.batches {
		applied, err := b.Replay(db)
		if err != nil {
			t.Fatalf("batch %d replay: %v", i, err)
		}
		if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	fp, err := wal.Fingerprint(s)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return fp
}

type pipeCrashCase struct {
	point string
	mode  failpoint.Mode
	hit   int
}

func (c pipeCrashCase) name() string {
	return c.point + "/" + c.mode.String() + "/hit" + string(rune('0'+c.hit))
}

func (c pipeCrashCase) arm(reg *failpoint.Registry) {
	switch c.mode {
	case failpoint.ModeCrash:
		reg.ArmCrash(c.point, c.hit)
	case failpoint.ModeTorn:
		reg.ArmTorn(c.point, c.hit)
	default:
		reg.ArmError(c.point, c.hit, nil)
	}
}

// survivable reports whether the armed fault is absorbed without killing
// the pipeline: a healthy error on the unsynced group append writes
// nothing, fails the ticket cleanly, and the producer's resubmission
// completes the workload with no recovery at all; a healthy error in the
// async checkpoint is non-poisoning (wal.ErrCheckpointRetryable) — the
// batch it surfaced on is applied and durable, the cadence re-arms, and
// a later boundary retries the checkpoint. Crash and torn modes always
// fail-stop.
func (c pipeCrashCase) survivable() bool {
	if c.mode != failpoint.ModeError {
		return false
	}
	switch c.point {
	case wal.FailGroupAppend, wal.FailAsyncCkptEncode, wal.FailAsyncCkptRename:
		return true
	}
	return false
}

// pipeMatrix enumerates the pipelined cells: every group-mode failpoint
// under error and crash at its first and second occurrence, plus torn
// variants for the write-type group append. The smoke subset picks one
// representative per failure family.
func pipeMatrix(full bool) []pipeCrashCase {
	if !full {
		return []pipeCrashCase{
			{point: wal.FailGroupAppend, mode: failpoint.ModeTorn, hit: 1},      // torn queued record
			{point: wal.FailGroupSync, mode: failpoint.ModeCrash, hit: 1},       // shared fsync died
			{point: wal.FailGroupAck, mode: failpoint.ModeError, hit: 1},        // durable but unacked
			{point: wal.FailAsyncCkptRename, mode: failpoint.ModeCrash, hit: 1}, // async ckpt half-installed
		}
	}
	var cases []pipeCrashCase
	for _, p := range wal.GroupFailpoints() {
		for _, mode := range []failpoint.Mode{failpoint.ModeError, failpoint.ModeCrash} {
			for _, hit := range []int{1, 2} {
				cases = append(cases, pipeCrashCase{point: p, mode: mode, hit: hit})
			}
		}
	}
	for _, hit := range []int{1, 2} {
		cases = append(cases, pipeCrashCase{point: wal.FailGroupAppend, mode: failpoint.ModeTorn, hit: hit})
	}
	return cases
}

// runPipelinedWorkload drives the whole fixture through a scheduler with
// burst submission, retrying cleanly-failed batches. It returns died=true
// the moment the pipeline fail-stops (simulated kill: the caller abandons
// the log without closing it, exactly as a crash would).
func runPipelinedWorkload(t *testing.T, fx *pipeFixture, sched *pipeline.Scheduler, l *wal.Log) (died bool) {
	t.Helper()
	type inflight struct {
		idx int
		tk  *pipeline.Ticket
	}
	next, retries := 0, 0
	var pending []inflight
	for next < len(fx.batches) || len(pending) > 0 {
		for next < len(fx.batches) {
			tk, err := sched.Submit(context.Background(), fx.batches[next])
			if err != nil {
				return true
			}
			pending = append(pending, inflight{next, tk})
			next++
		}
		for len(pending) > 0 {
			head := pending[0]
			if _, err := head.tk.Wait(context.Background()); err == nil || head.tk.Applied() {
				// An applied ticket with an error only reports a trailing
				// async-checkpoint failure; the batch is committed and
				// must NOT be resubmitted. A fatal one fail-stops below.
				if sched.Err() != nil {
					return true
				}
				pending = pending[1:]
				continue
			}
			if sched.Err() != nil || l.Poisoned() != nil {
				return true
			}
			// Clean failure: the batch (and everything stamped behind it)
			// consumed nothing. Drain the stale tickets, then resubmit
			// from the failed batch in order.
			for _, st := range pending[1:] {
				_, _ = st.tk.Wait(context.Background())
			}
			pending = nil
			next = head.idx
			if retries++; retries > len(fx.batches) {
				t.Fatal("pipelined workload stuck in retry loop")
			}
		}
	}
	return false
}

// TestPipelinedCrashRecoveryMatrix kills the pipelined workload at each
// group-mode failpoint, resumes serially from whatever the crash left on
// disk, finishes the workload, and requires bit-identity with the
// uninterrupted serial run. Cells whose fault is absorbed (survivable)
// must instead complete in-process and still match.
func TestPipelinedCrashRecoveryMatrix(t *testing.T) {
	full := os.Getenv(crashEnvExt) != ""
	fx := makePipeFixture(t, 400, 8)
	want := serialReference(t, fx)
	walBase := wal.Options{CheckpointEvery: 2, KeepCheckpoints: 2, GroupCommit: 4}

	for _, tc := range pipeMatrix(full) {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			dir := t.TempDir()
			reg := failpoint.New(7)
			coreO := pipedCoreOpts()
			coreO.Failpoints = reg
			walOpts := walBase
			walOpts.Dir = dir
			walOpts.Failpoints = reg
			s, l, err := wal.New(fx.initial.Clone(), coreO, walOpts)
			if err != nil {
				t.Fatalf("wal.New: %v", err)
			}
			sched, err := pipeline.New(s, l, pipeline.Config{Replay: true})
			if err != nil {
				t.Fatalf("pipeline.New: %v", err)
			}
			// Arm only after construction so the kill lands in the steady
			// state (the initial checkpoint is the serial matrix's job).
			tc.arm(reg)

			died := runPipelinedWorkload(t, fx, sched, l)
			// Close drains the stages and surfaces an async-checkpoint
			// failure that had no later batch to report through (e.g. a
			// rename kill on the run's final checkpoint). A retryable
			// checkpoint error surfacing here is not a death: every
			// batch is applied and durable, only a cadence checkpoint is
			// missing, which the WAL suffix covers.
			closeErr := sched.Close()
			if !died && closeErr != nil && !errors.Is(closeErr, wal.ErrCheckpointRetryable) {
				died = true
			}
			if !died {
				// The arm fires only if the point reaches its hit count;
				// an async-checkpoint point may fall short when in-flight
				// checkpoints coalesce past a cadence boundary, making the
				// cell vacuous for this run's timing (the uninterrupted
				// run must still match serial).
				fired := reg.Hits(tc.point) >= tc.hit
				if fired && !tc.survivable() {
					t.Fatalf("armed failpoint %s fired but never killed the pipeline (hits=%d)", tc.point, reg.Hits(tc.point))
				}
				got, err := wal.Fingerprint(s)
				if err != nil {
					t.Fatalf("fingerprint: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("absorbed-fault run differs from serial reference")
				}
				if err := l.Close(); err != nil {
					t.Fatalf("log close: %v", err)
				}
				if !fired {
					t.Skipf("failpoint %s evaluated %d times; arm at hit %d never fired", tc.point, reg.Hits(tc.point), tc.hit)
				}
				return
			}
			// Simulated kill: the pipeline is drained and quiescent;
			// abandon the open log exactly as a crash would — no Close,
			// no final sync.

			resumeOpts := walBase
			resumeOpts.Dir = dir
			st, err := wal.Resume(serialCoreOpts(), resumeOpts)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if err := st.Summarizer.Set().CheckInvariants(); err != nil {
				t.Fatalf("recovered set: %v", err)
			}
			for i := st.Batches; i < len(fx.batches); i++ {
				applied, err := fx.batches[i].Replay(st.DB)
				if err != nil {
					t.Fatalf("batch %d replay: %v", i, err)
				}
				if _, err := st.Summarizer.ApplyBatchContext(context.Background(), applied); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			got, err := wal.Fingerprint(st.Summarizer)
			if err != nil {
				t.Fatalf("fingerprint: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("recovered pipelined run differs from uninterrupted serial run")
			}
		})
	}
}

// TestGroupFailpointCoverage runs the pipelined workload uninterrupted
// with a registry attached and verifies every group-mode failpoint is
// actually evaluated — a point the run never reaches is a point the
// pipelined matrix silently fails to test.
func TestGroupFailpointCoverage(t *testing.T) {
	fx := makePipeFixture(t, 400, 8)
	reg := failpoint.New(3)
	coreO := pipedCoreOpts()
	coreO.Failpoints = reg
	s, l, err := wal.New(fx.initial.Clone(), coreO,
		wal.Options{Dir: t.TempDir(), CheckpointEvery: 2, GroupCommit: 4, Failpoints: reg})
	if err != nil {
		t.Fatalf("wal.New: %v", err)
	}
	sched, err := pipeline.New(s, l, pipeline.Config{Replay: true})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	if died := runPipelinedWorkload(t, fx, sched, l); died {
		t.Fatal("uninterrupted pipelined run died")
	}
	if err := sched.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("log close: %v", err)
	}
	for _, p := range wal.GroupFailpoints() {
		if reg.Hits(p) == 0 {
			t.Errorf("group failpoint %s never evaluated by the pipelined workload", p)
		}
	}
}
