package wal

import (
	"bytes"
	"context"
	"os"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/neighbor"
)

// crashEnv gates the full crash matrix (every failpoint × mode × hit);
// without it a fixed smoke subset runs, keeping `go test` fast while
// `make crash` and CI sweep everything.
const crashEnv = "INCBUBBLES_CRASH"

// allFailpoints is the union the matrix must cover: the apply-path points
// and the WAL/checkpoint I/O points.
func allFailpoints() []string {
	return append(core.Failpoints(), Failpoints()...)
}

// TestFailpointCoverage runs the workload uninterrupted with a registry
// attached and verifies every registered failpoint is actually evaluated
// — a point the run never reaches is a point the crash matrix silently
// fails to test.
func TestFailpointCoverage(t *testing.T) {
	f := makeFixture(t, 400, 8)
	reg := failpoint.New(3)
	db := f.initial.Clone()
	opts := coreOpts()
	opts.Failpoints = reg
	s, l, err := New(db, opts, Options{Dir: t.TempDir(), CheckpointEvery: 2, Failpoints: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, b := range f.batches {
		applied, _ := applyToDB(db, b)
		if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	_ = l.Close()
	for _, p := range allFailpoints() {
		if reg.Hits(p) == 0 {
			t.Errorf("failpoint %s never evaluated by the workload", p)
		}
	}
}

// crashCase is one cell of the matrix: kill the run the nth time the
// workload reaches a failpoint, in a given mode, optionally under the
// FastPair neighbor index (recovery replay exercised under the new index;
// the dense-run reference fingerprint stays the comparison target, so the
// fastpair legs double as cross-implementation determinism checks).
type crashCase struct {
	point    string
	mode     failpoint.Mode
	hit      int
	fastpair bool
}

func (c crashCase) name() string {
	n := c.point + "/" + c.mode.String() + "/hit" + string(rune('0'+c.hit))
	if c.fastpair {
		n += "/fastpair"
	}
	return n
}

func (c crashCase) coreOpts() core.Options {
	opts := coreOpts()
	if c.fastpair {
		opts.Neighbor = neighbor.KindFastPair
	}
	return opts
}

func (c crashCase) arm(reg *failpoint.Registry) {
	switch c.mode {
	case failpoint.ModeCrash:
		reg.ArmCrash(c.point, c.hit)
	case failpoint.ModeTorn:
		reg.ArmTorn(c.point, c.hit)
	default:
		reg.ArmError(c.point, c.hit, nil)
	}
}

// matrix enumerates the cases: every failpoint killed at its first and
// second occurrence, plus torn-write variants for the two write-type
// points. The smoke subset (always on) picks one representative per
// failure family.
func matrix(full bool) []crashCase {
	if !full {
		return []crashCase{
			{point: core.FailMaintainRound, mode: failpoint.ModeCrash, hit: 1},                 // mid-mutation, logged
			{point: core.FailMaintainRound, mode: failpoint.ModeCrash, hit: 1, fastpair: true}, // same kill under the lazy index
			{point: FailAppendWrite, mode: failpoint.ModeTorn, hit: 1},                         // torn record on disk
			{point: FailAppendSync, mode: failpoint.ModeCrash, hit: 1},                         // durability unknown
			{point: FailCkptRename, mode: failpoint.ModeCrash, hit: 1},                         // checkpoint half-installed
		}
	}
	var cases []crashCase
	for _, p := range allFailpoints() {
		for _, hit := range []int{1, 2} {
			cases = append(cases, crashCase{point: p, mode: failpoint.ModeCrash, hit: hit})
		}
	}
	for _, p := range core.Failpoints() {
		cases = append(cases, crashCase{point: p, mode: failpoint.ModeCrash, hit: 1, fastpair: true})
	}
	for _, p := range []string{FailAppendWrite, FailCkptWrite} {
		cases = append(cases,
			crashCase{point: p, mode: failpoint.ModeTorn, hit: 1},
			crashCase{point: p, mode: failpoint.ModeTorn, hit: 2})
	}
	return cases
}

// TestCrashRecoveryMatrix is the tentpole property test: for every
// registered failpoint, kill the workload there, Resume from disk, finish
// the workload, and require the final state to be bit-identical to the
// uninterrupted run. Resume may legitimately land before or after the
// dying batch (a failed sync leaves durability unknown) — identity of the
// final state is the invariant.
func TestCrashRecoveryMatrix(t *testing.T) {
	full := os.Getenv(crashEnv) != ""
	f := makeFixture(t, 400, 8)
	walBase := Options{CheckpointEvery: 2, KeepCheckpoints: 2}
	want := runAll(t, f, t.TempDir(), walBase)

	for _, tc := range matrix(full) {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			dir := t.TempDir()
			db := f.initial.Clone()
			reg := failpoint.New(7)
			opts := tc.coreOpts()
			opts.Failpoints = reg
			walOpts := walBase
			walOpts.Dir = dir
			walOpts.Failpoints = reg
			s, _, err := New(db, opts, walOpts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			// Arm only after construction so the kill lands in the steady
			// state; crash-during-New has its own test.
			tc.arm(reg)
			killed := false
			for i, b := range f.batches {
				applied, err := applyToDB(db, b)
				if err != nil {
					t.Fatalf("batch %d apply: %v", i, err)
				}
				if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
					killed = true // simulated kill: abandon everything
					break
				}
			}
			if !killed {
				// The injected fault surfaced nowhere — acceptable only if
				// the point genuinely fired and was absorbed, which none of
				// the armed modes allow.
				t.Fatalf("armed failpoint %s never killed the run (hits=%d)", tc.point, reg.Hits(tc.point))
			}

			st, err := Resume(tc.coreOpts(), walBase.withDir(dir))
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if err := st.Summarizer.Set().CheckInvariants(); err != nil {
				t.Fatalf("recovered set: %v", err)
			}
			for i := st.Batches; i < len(f.batches); i++ {
				applied, err := applyToDB(st.DB, f.batches[i])
				if err != nil {
					t.Fatalf("batch %d apply: %v", i, err)
				}
				if _, err := st.Summarizer.ApplyBatchContext(context.Background(), applied); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
				t.Fatal("recovered run differs from uninterrupted run")
			}
		})
	}
}

// withDir returns a copy of o pointed at dir — matrix convenience.
func (o Options) withDir(dir string) Options {
	o.Dir = dir
	return o
}

// TestCrashDuringNew kills the initial checkpoint: the directory is left
// with a segment but no checkpoint, Resume reports ErrNoState, and the
// documented operator move — clear the directory and start fresh — works.
func TestCrashDuringNew(t *testing.T) {
	f := makeFixture(t, 300, 1)
	dir := t.TempDir()
	reg := failpoint.New(1)
	reg.ArmCrash(FailCkptRename, 1)
	db := f.initial.Clone()
	if _, _, err := New(db, coreOpts(), Options{Dir: dir, Failpoints: reg}); err == nil {
		t.Fatal("New survived a crashed initial checkpoint")
	}
	if _, err := Resume(coreOpts(), Options{Dir: dir}); err == nil {
		t.Fatal("Resume recovered from a directory with no checkpoint")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Remove(dir + "/" + e.Name()); err != nil {
			t.Fatal(err)
		}
	}
	db2 := f.initial.Clone()
	s, l, err := New(db2, coreOpts(), Options{Dir: dir})
	if err != nil {
		t.Fatalf("fresh New after cleanup: %v", err)
	}
	applied, _ := applyToDB(db2, f.batches[0])
	if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
		t.Fatalf("batch: %v", err)
	}
	_ = l.Close()
}

// TestTornCheckpointTempInvisible kills mid-way through the checkpoint
// temp write: the torn temp file must be invisible to recovery (never
// renamed in), and the previous checkpoint still resumes.
func TestTornCheckpointTempInvisible(t *testing.T) {
	f := makeFixture(t, 300, 3)
	dir := t.TempDir()
	reg := failpoint.New(5)
	db := f.initial.Clone()
	s, _, err := New(db, coreOpts(), Options{Dir: dir, CheckpointEvery: 1, Failpoints: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg.ArmTorn(FailCkptWrite, 1)
	applied, _ := applyToDB(db, f.batches[0])
	if _, err := s.ApplyBatchContext(context.Background(), applied); err == nil {
		t.Fatal("torn checkpoint write surfaced no error")
	}
	// The batch itself is durable in the WAL; only the checkpoint died.
	st, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st.Batches != 1 || st.Replayed != 1 {
		t.Fatalf("batches=%d replayed=%d, want 1/1", st.Batches, st.Replayed)
	}
}
