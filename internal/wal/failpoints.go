package wal

// Failpoints of the durability I/O paths, evaluated on every operation
// when a registry is armed via Options.Failpoints. The crash-recovery
// matrix (crash_test.go) kills at each of these — and at the core apply
// failpoints — and verifies recovery reproduces the uninterrupted run.
const (
	// FailAppendWrite guards the segment write of one framed record
	// (write-type: torn mode persists a seeded prefix).
	FailAppendWrite = "wal.append.write"
	// FailAppendSync guards the fsync after a record append.
	FailAppendSync = "wal.append.sync"
	// FailCkptWrite guards the temp-file write of a checkpoint
	// (write-type).
	FailCkptWrite = "wal.ckpt.temp.write"
	// FailCkptSync guards the temp-file fsync before the rename.
	FailCkptSync = "wal.ckpt.temp.sync"
	// FailCkptRename guards the atomic rename installing a checkpoint.
	FailCkptRename = "wal.ckpt.rename"
	// FailCkptRotate guards opening the fresh segment after a checkpoint.
	FailCkptRotate = "wal.ckpt.rotate"
	// FailCkptGC guards the garbage collection of superseded checkpoints
	// and fully-covered segments.
	FailCkptGC = "wal.ckpt.gc"
)

// Failpoints returns the names of every failpoint in the WAL and
// checkpoint paths, for crash-matrix tests that must cover them all.
func Failpoints() []string {
	return []string{
		FailAppendWrite,
		FailAppendSync,
		FailCkptWrite,
		FailCkptSync,
		FailCkptRename,
		FailCkptRotate,
		FailCkptGC,
	}
}
