package wal

// Failpoints of the durability I/O paths, evaluated on every operation
// when a registry is armed via Options.Failpoints. The crash-recovery
// matrix (crash_test.go) kills at each of these — and at the core apply
// failpoints — and verifies recovery reproduces the uninterrupted run.
const (
	// FailAppendWrite guards the segment write of one framed record
	// (write-type: torn mode persists a seeded prefix).
	FailAppendWrite = "wal.append.write"
	// FailAppendSync guards the fsync after a record append.
	FailAppendSync = "wal.append.sync"
	// FailCkptWrite guards the temp-file write of a checkpoint
	// (write-type).
	FailCkptWrite = "wal.ckpt.temp.write"
	// FailCkptSync guards the temp-file fsync before the rename.
	FailCkptSync = "wal.ckpt.temp.sync"
	// FailCkptRename guards the atomic rename installing a checkpoint.
	FailCkptRename = "wal.ckpt.rename"
	// FailCkptRotate guards opening the fresh segment after a checkpoint.
	FailCkptRotate = "wal.ckpt.rotate"
	// FailCkptGC guards the garbage collection of superseded checkpoints
	// and fully-covered segments.
	FailCkptGC = "wal.ckpt.gc"
	// FailAppendNoSpace guards the record append (serial BeforeApply and
	// group Enqueue) with disk-full semantics (write-type; arm with
	// ArmTornError for a partial frame). An append that fails with
	// failpoint.ErrNoSpace poisons the log fail-stop even when nothing
	// was written: a full device cannot accept the record, retrying in
	// place would spin, and a real ENOSPC may leave an undetectable
	// partial frame — the operator frees space and Resumes.
	FailAppendNoSpace = "wal.append.nospace"
	// FailCheckpointNoSpace guards the checkpoint temp-file write (both
	// the synchronous and the async path) with disk-full semantics
	// (write-type). A fired point is retryable and never poisons: the
	// torn temp file is invisible to recovery, the previous checkpoint
	// plus the intact WAL still reconstruct the state, and no acked
	// batch is lost. ENOSPC on the rename is simulated by arming the
	// existing rename points with failpoint.ErrNoSpace — same retryable
	// outcome.
	FailCheckpointNoSpace = "wal.ckpt.nospace"
)

// Failpoints of the group-commit queue and the async checkpoint
// (DESIGN.md §13) — only reachable in group mode (Options.GroupCommit >
// 0), so they are listed separately: the serial crash matrix covers
// Failpoints(), the pipelined legs additionally cover these.
const (
	// FailGroupAppend guards the unsynced segment write of one enqueued
	// record (write-type: torn mode persists a seeded prefix).
	FailGroupAppend = "wal.group.append"
	// FailGroupSync guards the shared fsync covering the pending queue.
	FailGroupSync = "wal.group.sync"
	// FailGroupAck guards the ack release after a successful group fsync.
	FailGroupAck = "wal.group.ack"
	// FailAsyncCkptEncode guards the synchronous snapshot encode that
	// starts an async checkpoint.
	FailAsyncCkptEncode = "wal.async.ckpt.encode"
	// FailAsyncCkptRename guards the background rename installing an
	// async checkpoint.
	FailAsyncCkptRename = "wal.async.ckpt.rename"
)

// Failpoints returns the names of every failpoint in the WAL and
// checkpoint paths, for crash-matrix tests that must cover them all.
func Failpoints() []string {
	return []string{
		FailAppendWrite,
		FailAppendSync,
		FailCkptWrite,
		FailCkptSync,
		FailCkptRename,
		FailCkptRotate,
		FailCkptGC,
		FailAppendNoSpace,
		FailCheckpointNoSpace,
	}
}

// GroupFailpoints returns the failpoints only reachable in group-commit
// mode. The pipelined crash matrix must cover every one of these.
func GroupFailpoints() []string {
	return []string{
		FailGroupAppend,
		FailGroupSync,
		FailGroupAck,
		FailAsyncCkptEncode,
		FailAsyncCkptRename,
	}
}
