package wal

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/vecmath"
)

// FuzzGroupCommit interprets fuzzer bytes as a program of group-commit
// operations — enqueue, flush, arm a fault at the next append / fsync /
// ack, crash-abandon — against a real Log, then reads the abandoned
// segment off disk and checks the ack barrier's contract:
//
//   - acked ⇒ durable: every record covered by a successful Flush must
//     decode from the segment's valid prefix, in ordinal order;
//   - never-acked ⇒ clean: whatever the interleaving left behind the
//     acked watermark is either a whole record (recovery may replay it)
//     or a cleanly detected torn tail (recovery truncates it) — never a
//     record that decodes to something that was not enqueued.
func FuzzGroupCommit(f *testing.F) {
	const (
		opEnqueue = iota // append the next record to the group queue
		opFlush          // shared fsync; releases acks on success
		opArmTorn        // next append tears (seeded prefix persists)
		opArmErr         // next append fails cleanly (nothing written)
		opArmSync        // next group fsync dies
		opArmAck         // next ack release dies after a good fsync
		opCrash          // abandon the process here
		opCount
	)
	f.Add([]byte{opEnqueue, opFlush})
	f.Add([]byte{opEnqueue, opEnqueue, opEnqueue, opFlush, opEnqueue, opCrash})
	f.Add([]byte{opArmTorn, opEnqueue, opCrash})
	f.Add([]byte{opEnqueue, opArmErr, opEnqueue, opFlush})
	f.Add([]byte{opArmSync, opEnqueue, opFlush, opEnqueue})
	f.Add([]byte{opEnqueue, opFlush, opArmAck, opEnqueue, opFlush, opCrash})
	f.Add([]byte{opEnqueue, opArmTorn, opEnqueue, opEnqueue, opFlush})

	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 64 {
			program = program[:64]
		}
		dir := t.TempDir()
		reg := failpoint.New(19)
		db, err := dataset.New(2)
		if err != nil {
			t.Fatalf("dataset.New: %v", err)
		}
		for i := 0; i < 20; i++ {
			if _, err := db.Insert(vecmath.Point{float64(i), float64(i % 5)}, dataset.Noise); err != nil {
				t.Fatalf("seed db: %v", err)
			}
		}
		_, l, err := New(db, core.Options{NumBubbles: 4, Seed: 9},
			Options{Dir: dir, GroupCommit: 8, Failpoints: reg})
		if err != nil {
			t.Fatalf("New: %v", err)
		}

		enqueued := 0 // records accepted by Enqueue
		acked := 0    // records covered by a successful Flush
		for _, op := range program {
			switch int(op) % opCount {
			case opEnqueue:
				batch := dataset.Batch{{
					Op: dataset.OpInsert, ID: dataset.PointID(1000 + enqueued),
					P: vecmath.Point{float64(enqueued), 2}, Label: dataset.Noise,
				}}
				if err := l.Enqueue(context.Background(), uint64(enqueued), batch); err == nil {
					enqueued++
				}
			case opFlush:
				if err := l.Flush(context.Background()); err == nil {
					acked = enqueued
				}
			case opArmTorn:
				reg.ArmTorn(FailGroupAppend, 1)
			case opArmErr:
				reg.ArmError(FailGroupAppend, 1, nil)
			case opArmSync:
				reg.ArmCrash(FailGroupSync, 1)
			case opArmAck:
				reg.ArmCrash(FailGroupAck, 1)
			case opCrash:
				goto crashed
			}
		}
	crashed:
		// Abandon without Close: inspect the newest segment as recovery
		// would find it after the simulated crash.
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segment files: %v", err)
		}
		sort.Strings(segs)
		data, err := os.ReadFile(segs[len(segs)-1])
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		recs, validLen, _ := scanSegment(data)
		if validLen > len(data) {
			t.Fatalf("validLen %d beyond segment size %d", validLen, len(data))
		}
		if len(recs) < acked {
			t.Fatalf("acked %d records but only %d decode from the segment", acked, len(recs))
		}
		if len(recs) > enqueued {
			t.Fatalf("segment decodes %d records, only %d were ever enqueued", len(recs), enqueued)
		}
		for i, rec := range recs {
			if rec.ordinal != uint64(i) {
				t.Fatalf("record %d carries ordinal %d: ack order broken", i, rec.ordinal)
			}
			if len(rec.batch) != 1 || rec.batch[0].ID != dataset.PointID(1000+i) {
				t.Fatalf("record %d decodes to a batch that was never enqueued: %+v", i, rec.batch)
			}
		}
	})
}
