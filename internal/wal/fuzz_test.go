package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"incbubbles/internal/dataset"
	"incbubbles/internal/vecmath"
)

// FuzzRecordRoundTrip drives the payload codec with a fuzzer-shaped
// batch: whatever encodes must decode back to the same updates, and the
// truncation of any encoded frame must never panic or decode to a record
// with a valid CRC but a different payload.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte{1, 0x3f, 2}, int64(1), int64(-1))
	f.Add(uint64(41), []byte{1, 1, 2, 2, 1}, int64(7), int64(0))
	f.Add(uint64(1<<63), []byte{2}, int64(0), int64(3))
	f.Fuzz(func(t *testing.T, ordinal uint64, ops []byte, idSeed, labelSeed int64) {
		const dim = 3
		if len(ops) > 64 {
			ops = ops[:64]
		}
		batch := make(dataset.Batch, 0, len(ops))
		for i, op := range ops {
			id := dataset.PointID(uint64(idSeed) + uint64(i))
			if op%2 == 0 {
				batch = append(batch, dataset.Update{Op: dataset.OpDelete, ID: id})
				continue
			}
			label := int(labelSeed%100) + i
			if label < dataset.Noise {
				label = dataset.Noise
			}
			p := vecmath.Point{float64(i), float64(int8(op)), float64(labelSeed % 997)}
			batch = append(batch, dataset.Update{Op: dataset.OpInsert, ID: id, P: p, Label: label})
		}
		payload, err := encodePayload(dim, ordinal, batch)
		if err != nil {
			t.Fatalf("encode of well-formed batch: %v", err)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("decode of encoded payload: %v", err)
		}
		if rec.ordinal != ordinal || rec.dim != dim || len(rec.batch) != len(batch) {
			t.Fatalf("round trip: ordinal=%d dim=%d len=%d", rec.ordinal, rec.dim, len(rec.batch))
		}
		for i, u := range rec.batch {
			w := batch[i]
			if u.Op != w.Op || u.ID != w.ID {
				t.Fatalf("update %d: %+v != %+v", i, u, w)
			}
			if w.Op == dataset.OpInsert && (u.Label != w.Label || !u.P.Equal(w.P)) {
				t.Fatalf("insert %d: %+v != %+v", i, u, w)
			}
		}
		// A framed record survives the segment scanner; every truncation of
		// the segment yields either the record or a clean tail error.
		seg := append([]byte(segmentMagic), frameRecord(payload)...)
		for _, cut := range []int{len(seg), len(seg) - 1, len(seg) / 2, len(segmentMagic) + 1} {
			if cut < 0 || cut > len(seg) {
				continue
			}
			recs, validLen, tailErr := scanSegment(seg[:cut])
			if validLen > cut {
				t.Fatalf("cut %d: validLen %d beyond data", cut, validLen)
			}
			if cut == len(seg) {
				if tailErr != nil || len(recs) != 1 {
					t.Fatalf("full segment: recs=%d err=%v", len(recs), tailErr)
				}
			} else if cut > len(segmentMagic) && len(recs) != 0 {
				t.Fatalf("cut %d: partial frame decoded to %d records", cut, len(recs))
			}
		}
	})
}

// FuzzSegmentScan throws raw bytes at the segment scanner: it must never
// panic, never claim a valid prefix longer than the input, and every
// record it accepts must actually carry a matching CRC in the bytes.
func FuzzSegmentScan(f *testing.F) {
	p, _ := encodePayload(2, 3, dataset.Batch{
		{Op: dataset.OpInsert, ID: 9, P: vecmath.Point{1, 2}, Label: 0},
		{Op: dataset.OpDelete, ID: 4},
	})
	good := append([]byte(segmentMagic), frameRecord(p)...)
	f.Add(good)
	f.Add([]byte(segmentMagic))
	f.Add([]byte("garbage"))
	f.Add(append(append([]byte(nil), good...), good[len(segmentMagic):]...))
	truncated := append([]byte(nil), good[:len(good)-2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, tailErr := scanSegment(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d outside [0,%d]", validLen, len(data))
		}
		if tailErr == nil && validLen != len(data) {
			t.Fatalf("clean scan stopped at %d of %d", validLen, len(data))
		}
		if len(recs) > 0 && validLen < len(segmentMagic)+frameBytes {
			t.Fatalf("%d records from a %d-byte valid prefix", len(recs), validLen)
		}
		// Re-walk the accepted prefix: each frame's stored CRC must match
		// its payload — a record with a bad CRC must never be returned.
		if validLen >= len(segmentMagic) && string(data[:len(segmentMagic)]) == segmentMagic {
			off := len(segmentMagic)
			for i := 0; off < validLen; i++ {
				n := int(binary.LittleEndian.Uint32(data[off:]))
				crc := binary.LittleEndian.Uint32(data[off+4:])
				payload := data[off+frameBytes : off+frameBytes+n]
				if crc32.ChecksumIEEE(payload) != crc {
					t.Fatalf("record %d accepted with mismatched CRC", i)
				}
				if i >= len(recs) {
					t.Fatalf("valid prefix holds more frames than records returned")
				}
				reenc, err := encodePayload(recs[i].dim, recs[i].ordinal, recs[i].batch)
				if err != nil || !bytes.Equal(reenc, payload) {
					t.Fatalf("record %d does not re-encode to its payload (err=%v)", i, err)
				}
				off += frameBytes + n
			}
		}
	})
}
