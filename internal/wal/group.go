package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/retry"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/trace"
)

// groupState is the group-commit queue plus the async-checkpoint state,
// embedded in Log and guarded by Log.mu. The queue itself lives on disk:
// Enqueue appends framed records to the current segment without syncing;
// the in-memory state only tracks the watermarks.
//
// Ordinal watermarks (invariant: nextOrdinal ≤ durableTo ≤ nextAppend):
//
//	[0, nextOrdinal)          logged, durable AND applied
//	[nextOrdinal, durableTo)  durable (acked by a shared fsync), apply pending
//	[durableTo, nextAppend)   appended, awaiting the group fsync — a crash
//	                          here may tear or drop them, which is sound
//	                          because no ack was ever released for them
//
// Both watermarks lazily re-sync to nextOrdinal (they trail it when the
// serial path or recovery advanced the log), so group and serial calls
// interleave safely on one log.
type groupState struct {
	nextAppend   uint64 // next ordinal Enqueue must carry
	durableTo    uint64 // ordinals below this are covered by a shared fsync
	pendingRecs  int
	pendingBytes int64
	// ckptDue marks the checkpoint cadence reached; the scheduler picks
	// it up at a batch boundary via StartAsyncCheckpoint. rotateDue marks
	// a completed async checkpoint whose segment rotation is still
	// pending (rotation needs a drained queue so ordinals stay segmented
	// correctly).
	ckptDue   bool
	rotateDue bool
	// inflight is non-nil while an async checkpoint writes in the
	// background; closed on completion. asyncErr stashes its failure
	// until the next AfterApply / AsyncBarrier surfaces it.
	inflight chan struct{}
	asyncErr error
}

// errGroupDisabled reports a group-queue call on a log whose
// Options.GroupCommit is zero.
var errGroupDisabled = errors.New("wal: group commit not enabled (Options.GroupCommit is 0)")

// ErrCheckpointRetryable marks a checkpoint failure that did not poison
// the log: the previous checkpoint plus the intact WAL still reconstruct
// the state, the cadence stays armed, and a later batch boundary retries.
// A pipeline scheduler observing it on an applied batch must keep
// running — the serial path never stops applying over a failed cadence
// checkpoint either. A simulated crash (failpoint.ErrCrash) is never
// tagged: by the failpoint convention the observer must fail-stop.
var ErrCheckpointRetryable = errors.New("wal: checkpoint failed; retried at next cadence")

// markCheckpointRetryable tags a checkpoint failure with
// ErrCheckpointRetryable unless the chain carries a simulated crash.
func markCheckpointRetryable(err error) error {
	if errors.Is(err, failpoint.ErrCrash) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrCheckpointRetryable, err)
}

// syncWatermarks re-anchors the queue watermarks after the serial path or
// recovery advanced nextOrdinal past them.
func (l *Log) syncWatermarks() {
	if l.group.nextAppend < l.nextOrdinal {
		l.group.nextAppend = l.nextOrdinal
	}
	if l.group.durableTo < l.nextOrdinal {
		l.group.durableTo = l.nextOrdinal
	}
}

// Enqueue appends the framed record of a future batch to the current
// segment WITHOUT syncing it. The batch is not durable — and must not be
// applied — until a Flush (or a BeforeApply reaching it) covers it with
// the shared group fsync. Ordinals must arrive consecutively; a gap is a
// scheduler bug and poisons the log. Torn-write and error semantics match
// the serial append: an injected error with nothing written leaves the
// log healthy, anything that may have left bytes behind poisons it.
func (l *Log) Enqueue(ctx context.Context, ordinal uint64, batch dataset.Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.GroupCommit <= 0 {
		return errGroupDisabled
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.replaying {
		return errors.New("wal: Enqueue during replay")
	}
	l.syncWatermarks()
	if ordinal != l.group.nextAppend {
		return l.poison(fmt.Errorf("wal: enqueue ordinal %d, expected %d", ordinal, l.group.nextAppend))
	}
	if err := l.maybeRotateLocked(); err != nil {
		return err
	}
	sp := l.startSpan(ctx, "wal.append")
	defer sp.End()
	sp.SetInt(trace.AttrOrdinal, int64(ordinal))
	payload, err := encodePayload(l.dim, ordinal, batch)
	if err != nil {
		return err
	}
	frame := frameRecord(payload)
	sp.SetInt(trace.AttrBytes, int64(len(frame)))
	keep, injected := l.fail.HitWrite(FailGroupAppend, len(frame))
	if injected == nil {
		keep, injected = l.fail.HitWrite(FailAppendNoSpace, keep)
	}
	var wrote int
	var werr error
	if keep > 0 {
		wrote, werr = l.f.Write(frame[:keep])
	}
	if injected != nil {
		if wrote > 0 {
			_ = l.f.Sync()
			return l.poison(injected)
		}
		if errors.Is(injected, failpoint.ErrNoSpace) {
			// Disk full is fail-stop even with nothing written: see
			// FailAppendNoSpace.
			return l.poison(injected)
		}
		return injected // nothing written; log still healthy
	}
	if werr != nil {
		if rerr := l.rollbackAppend(); rerr != nil {
			return l.poison(fmt.Errorf("wal: enqueue failed (%v) and rollback failed: %w", werr, rerr))
		}
		return fmt.Errorf("wal: enqueueing batch %d: %w", ordinal, werr)
	}
	l.segSize += int64(len(frame))
	l.group.nextAppend++
	l.group.pendingRecs++
	l.group.pendingBytes += int64(len(frame))
	l.m.appends.Inc()
	l.m.appendBytes.Add(uint64(len(frame)))
	return nil
}

// Flush covers every pending enqueued record with one shared fsync and
// releases their acks: after a nil return the records are durable and
// BeforeApply will consume them without further I/O. A no-op when the
// queue is empty.
func (l *Log) Flush(ctx context.Context) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.GroupCommit <= 0 {
		return errGroupDisabled
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	return l.flushLocked(ctx)
}

// PendingEnqueued returns the number of enqueued records not yet covered
// by a group fsync.
func (l *Log) PendingEnqueued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.group.pendingRecs
}

// GroupCommitMax reports the configured group-commit queue bound, 0 when
// group mode is disabled.
func (l *Log) GroupCommitMax() int { return l.opts.GroupCommit }

// NextAppendOrdinal returns the ordinal the next Enqueue must carry.
// Schedulers use it as a guard: an enqueue stamp that disagrees with the
// log (after a failed-and-rewound batch) is skipped rather than poisoning
// the ordinal sequence, and the batch falls back to the serial append
// path inside BeforeApply.
func (l *Log) NextAppendOrdinal() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncWatermarks()
	return l.group.nextAppend
}

// flushLocked is the shared group fsync. Failure semantics mirror the
// serial append fsync: once the sync is attempted and fails — or the ack
// release fails — the on-disk durability of the pending records is
// unknown, so the log poisons. (The records themselves were never acked,
// so recovery is free to land on either side of them.)
func (l *Log) flushLocked(ctx context.Context) error {
	if l.group.pendingRecs == 0 {
		return nil
	}
	sp := l.startSpan(ctx, "wal.group_commit")
	defer sp.End()
	sp.SetInt(trace.AttrCount, int64(l.group.pendingRecs))
	sp.SetInt(trace.AttrBytes, l.group.pendingBytes)
	if err := l.fail.Hit(FailGroupSync); err != nil {
		return l.poison(err)
	}
	if !l.opts.NoSync {
		fsp := sp.Start("wal.fsync")
		fsp.SetInt(trace.AttrBytes, l.group.pendingBytes)
		syncStart := time.Now()
		err := l.f.Sync()
		elapsed := time.Since(syncStart).Seconds()
		l.m.fsyncSeconds.Observe(elapsed)
		l.m.groupCommitSeconds.Observe(elapsed)
		fsp.End()
		if err != nil {
			return l.poison(fmt.Errorf("wal: group fsync: %w", err))
		}
		l.m.syncs.Inc()
	}
	if err := l.fail.Hit(FailGroupAck); err != nil {
		// The records are on stable storage but their acks were never
		// released; poisoning keeps the ack barrier honest (no batch
		// applies without its ack) and recovery replays the records.
		return l.poison(err)
	}
	l.group.durableTo = l.group.nextAppend
	l.group.pendingRecs = 0
	l.group.pendingBytes = 0
	return nil
}

// groupBeforeApply consumes the ack of an enqueued record: already
// durable — advance; appended but unflushed — flush the group on demand,
// then advance. Returns handled=false for an ordinal that was never
// enqueued, which falls back to the caller's serial append path.
// Called with l.mu held, after the ordinal == nextOrdinal check.
func (l *Log) groupBeforeApply(ctx context.Context, ordinal uint64) (handled bool, err error) {
	l.syncWatermarks()
	if ordinal >= l.group.nextAppend {
		return false, nil
	}
	if ordinal >= l.group.durableTo {
		if err := l.flushLocked(ctx); err != nil {
			return true, err
		}
	}
	l.nextOrdinal++
	return true, nil
}

// maybeRotateLocked performs the segment rotation a completed async
// checkpoint deferred. Rotation requires a fully drained queue — every
// enqueued record applied — so the fresh segment's name (the next
// ordinal) stays truthful; until then appends keep extending the old
// segment, which recovery handles like any longer replay suffix.
func (l *Log) maybeRotateLocked() error {
	if !l.group.rotateDue || l.group.pendingRecs > 0 || l.group.nextAppend != l.nextOrdinal {
		return nil
	}
	l.group.rotateDue = false
	if err := l.rotate(); err != nil {
		return err
	}
	return l.gc()
}

// CheckpointDue reports that the checkpoint cadence has been reached and
// no async checkpoint is in flight — the scheduler should call
// StartAsyncCheckpoint at the next batch boundary.
func (l *Log) CheckpointDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.group.ckptDue && l.group.inflight == nil
}

// StartAsyncCheckpoint captures the summarizer's checkpoint image
// synchronously — the caller guarantees s is quiescent (a batch
// boundary on the applier goroutine) — and writes, syncs and installs it
// on a background goroutine so the ingest path never waits on checkpoint
// I/O. A failure of the background half is stashed and surfaced by the
// next AfterApply or AsyncBarrier, mirroring how a synchronous cadence
// checkpoint failure surfaces; like every checkpoint failure it does not
// poison the log. No-op when no checkpoint is due or one is in flight.
func (l *Log) StartAsyncCheckpoint(s *core.Summarizer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.GroupCommit <= 0 {
		return errGroupDisabled
	}
	if !l.group.ckptDue || l.group.inflight != nil {
		return nil
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if uint64(s.Batches()) != l.nextOrdinal {
		return fmt.Errorf("wal: async checkpoint at batch %d but log applied %d", s.Batches(), l.nextOrdinal)
	}
	if err := l.fail.Hit(FailAsyncCkptEncode); err != nil {
		return markCheckpointRetryable(err)
	}
	data, err := encodeCheckpoint(s)
	if err != nil {
		return markCheckpointRetryable(err)
	}
	ordinal := uint64(s.Batches())
	l.group.ckptDue = false
	l.sinceCkpt = 0
	done := make(chan struct{})
	l.group.inflight = done
	go l.runAsyncCheckpoint(ordinal, data, done)
	return nil
}

// runAsyncCheckpoint is the background half: temp write → fsync → rename
// → fsync dir, off the apply path, with failed attempts re-tried in
// place under Options.CheckpointRetry (the same bounded seeded-backoff
// engine the synchronous path uses). Only once attempts are exhausted
// does the old discipline take over as the outer fallback: the error is
// stashed and the cadence re-armed so a later batch boundary starts a
// fresh checkpoint. On success the segment rotation is marked due
// (performed at the next drained Enqueue).
func (l *Log) runAsyncCheckpoint(ordinal uint64, data []byte, done chan struct{}) {
	defer close(done)
	sp := l.tracer.Start("wal.checkpoint")
	defer sp.End()
	sp.SetInt(trace.AttrOrdinal, int64(ordinal))
	sp.SetInt(trace.AttrBytes, int64(len(data)))
	ckptStart := time.Now()
	// The background goroutine has no request context by design: an
	// async checkpoint must not be abandoned mid-write by an ingest
	// deadline (AsyncBarrier bounds how long anyone waits on it).
	//lint:allow ctxflow async checkpoint retry is deliberately not cancellable by request contexts
	err := retry.Do(context.Background(), l.checkpointRetryPolicy(), func(context.Context) error {
		return l.writeCheckpointAsync(sp, ordinal, data)
	})

	l.mu.Lock()
	defer l.mu.Unlock()
	l.group.inflight = nil
	if err != nil {
		l.group.asyncErr = markCheckpointRetryable(fmt.Errorf("wal: async checkpoint %d: %w", ordinal, err))
		l.group.ckptDue = true
		return
	}
	l.group.rotateDue = true
	l.m.checkpoints.Inc()
	l.m.checkpointBytes.Add(uint64(len(data)))
	l.m.checkpointSeconds.Observe(time.Since(ckptStart).Seconds())
	l.lastCkpt.Store(wallNanos())
	l.emit(telemetry.Event{Kind: telemetry.KindCheckpoint, Batch: int(ordinal), A: int(ordinal), N: len(data)})
}

// writeCheckpointAsync is writeCheckpointFile for the background path,
// with the async rename failpoint instead of the synchronous trio. It
// touches only its own temp/final files and the directory handle — never
// the segment file — so it runs without the log mutex.
func (l *Log) writeCheckpointAsync(sp *trace.Span, ordinal uint64, data []byte) error {
	final := filepath.Join(l.dir, ckptName(ordinal))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	keep, injected := l.fail.HitWrite(FailCheckpointNoSpace, len(data))
	if keep > 0 {
		if _, werr := f.Write(data[:keep]); werr != nil {
			_ = f.Close()
			return werr
		}
	}
	if injected != nil {
		// Disk-full on the temp write: persist the partial temp file the
		// way a real ENOSPC would (it stays invisible to recovery) and
		// surface the retryable failure.
		_ = f.Sync()
		_ = f.Close()
		return injected
	}
	fsp := sp.Start("wal.fsync")
	fsp.SetInt(trace.AttrBytes, int64(len(data)))
	serr := f.Sync()
	fsp.End()
	if serr != nil {
		_ = f.Close()
		return serr
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fail.Hit(FailAsyncCkptRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(l.dir)
}

// AsyncBarrier waits for an in-flight async checkpoint and returns (and
// clears) any stashed async-checkpoint failure. Nil when idle.
func (l *Log) AsyncBarrier() error {
	l.mu.Lock()
	done := l.group.inflight
	l.mu.Unlock()
	if done != nil {
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.group.asyncErr
	l.group.asyncErr = nil
	return err
}
