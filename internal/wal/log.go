package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/retry"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/trace"
)

// Options configures the durability layer.
type Options struct {
	// Dir is the directory holding WAL segments and checkpoints. It is
	// created if missing. Required.
	Dir string
	// CheckpointEvery writes an automatic checkpoint after this many
	// applied batches (≤0 selects 8). Checkpoints bound replay time and
	// rotate the WAL to a fresh segment.
	CheckpointEvery int
	// KeepCheckpoints retains this many most-recent checkpoints (≤0
	// selects 2) so a corrupt newest checkpoint can fall back to the one
	// before it.
	KeepCheckpoints int
	// NoSync skips the per-append fsync; appends then reach stable
	// storage only at checkpoints and Close. Faster, but a crash can lose
	// the batches since the last sync. Default false: every append syncs.
	NoSync bool
	// GroupCommit, when > 0, enables the group-commit queue (DESIGN.md
	// §13): Enqueue appends records without syncing, Flush (or a
	// BeforeApply that reaches an unflushed record) covers every pending
	// record with one shared fsync, and GroupCommit bounds how many
	// records one fsync may cover. Cadence checkpoints become async —
	// AfterApply only marks them due; a pipeline scheduler initiates them
	// off the apply path via StartAsyncCheckpoint. 0 (the default) keeps
	// the serial per-append fsync discipline.
	GroupCommit int
	// CheckpointRetry bounds in-place retries of a failed checkpoint
	// file write (internal/retry seeded-jitter backoff). The zero value
	// performs a single attempt — exactly the historical behaviour — and
	// a failed checkpoint always stays retryable at the next cadence
	// point regardless, so this policy only shortens the window in which
	// the WAL replay suffix grows. The policy's tuning fields
	// (MaxAttempts, delays, Multiplier, Jitter, Seed) and its Sleep seam
	// are honoured; its Retryable classifier and OnAttempt callback are
	// owned by the log (a simulated crash is never retried — fail-stop —
	// and retries are counted into wal.checkpoint_retries).
	CheckpointRetry retry.Policy
	// Telemetry receives the wal.* metrics and the durability events
	// (checkpoint, wal-truncate, quarantine, recover). Optional.
	Telemetry *telemetry.Sink
	// Failpoints threads a fault-injection registry through every I/O
	// boundary of the layer. Optional; nil evaluates points as disarmed.
	Failpoints *failpoint.Registry
	// Tracer records wal.append / wal.fsync / wal.checkpoint spans and
	// the recovery ladder (internal/trace). When the summarizer carries
	// the same tracer its batch span rides the context into BeforeApply /
	// AfterApply, so the WAL spans nest under the batch that caused them.
	// Optional; nil records nothing.
	Tracer *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 8
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// On-disk names: segments are named by the first batch ordinal they may
// contain, checkpoints by the ordinal they cover. Rejected files are
// renamed aside with quarantineSuffix, never deleted, so an operator can
// inspect what recovery refused to trust.
const (
	segmentPrefix    = "wal-"
	segmentSuffix    = ".log"
	ckptPrefix       = "ckpt-"
	ckptSuffix       = ".ckpt"
	tmpSuffix        = ".tmp"
	quarantineSuffix = ".quarantined"
	ordinalDigits    = 16
)

func segmentName(first uint64) string {
	return fmt.Sprintf("%s%0*d%s", segmentPrefix, ordinalDigits, first, segmentSuffix)
}

func ckptName(ordinal uint64) string {
	return fmt.Sprintf("%s%0*d%s", ckptPrefix, ordinalDigits, ordinal, ckptSuffix)
}

// ErrPoisoned reports a log that refuses further writes because an
// earlier failure left its on-disk tail state unknown (a torn append, a
// failed fsync, or an apply that died after its batch was logged). The
// durable state is intact — recover with Resume.
var ErrPoisoned = errors.New("wal: log poisoned by earlier failure")

// Log is the write-ahead log of one Summarizer. It implements
// core.Durability: BeforeApply appends the batch to the current segment
// and syncs it before the summarizer mutates anything, and AfterApply
// takes automatic checkpoints. All public entry points serialize on an
// internal mutex, so a pipeline scheduler's searcher goroutine may
// Enqueue/Flush while the applier goroutine runs BeforeApply/AfterApply
// and an async checkpoint writes in the background; the serial
// single-goroutine usage pays one uncontended lock per call.
type Log struct {
	dir    string
	opts   Options
	dim    int
	sink   *telemetry.Sink
	fail   *failpoint.Registry
	tracer *trace.Tracer
	m      walMetrics

	// mu serializes the log file: appends, rotation, fsync and checkpoint
	// writes all happen under it, so a crash can never observe a torn
	// interleaving of two records. Holding it across fsync is the design,
	// not an accident — group commit (group.go) amortizes exactly this
	// wait across the batched waiters.
	//lint:lockcover blocking the log mutex deliberately covers fsync/rotate; group commit amortizes the wait (DESIGN.md §13)
	mu          sync.Mutex
	f           *os.File
	segSize     int64
	nextOrdinal uint64 // ordinal the next BeforeApply must carry
	sinceCkpt   int
	replaying   bool
	poisoned    error
	closed      bool
	group       groupState // group-commit queue + async checkpoint (group.go)

	// lastCkpt is the wall-clock time of the last successful checkpoint
	// (sync or async), in unix nanoseconds; 0 before the first. It feeds
	// the serving layer's last-checkpoint-age health surface and is kept
	// atomic so scrapes never contend with the log mutex across an fsync.
	lastCkpt atomic.Int64
}

// wallNanos timestamps checkpoint completion for the observability
// surfaces. It is never used as entropy or simulation state.
func wallNanos() int64 {
	//lint:allow seededrng last-checkpoint age is an observability timestamp, not simulation state
	return time.Now().UnixNano()
}

// LastCheckpointNanos returns the unix-nanosecond wall time of the last
// successful checkpoint, or 0 if none has completed since open.
func (l *Log) LastCheckpointNanos() int64 {
	if l == nil {
		return 0
	}
	return l.lastCkpt.Load()
}

// walMetrics holds the layer's metric handles, resolved once.
type walMetrics struct {
	appends         *telemetry.Counter
	appendBytes     *telemetry.Counter
	syncs           *telemetry.Counter
	truncations     *telemetry.Counter
	checkpoints     *telemetry.Counter
	checkpointBytes *telemetry.Counter
	quarantined     *telemetry.Counter
	replayed        *telemetry.Counter
	ckptRetries     *telemetry.Counter

	fsyncSeconds       *telemetry.Histogram
	groupCommitSeconds *telemetry.Histogram
	checkpointSeconds  *telemetry.Histogram
}

func newWALMetrics(sink *telemetry.Sink) walMetrics {
	return walMetrics{
		appends:         sink.Counter(telemetry.MetricWALAppends),
		appendBytes:     sink.Counter(telemetry.MetricWALAppendBytes),
		syncs:           sink.Counter(telemetry.MetricWALSyncs),
		truncations:     sink.Counter(telemetry.MetricWALTruncations),
		checkpoints:     sink.Counter(telemetry.MetricWALCheckpoints),
		checkpointBytes: sink.Counter(telemetry.MetricWALCheckpointBytes),
		quarantined:     sink.Counter(telemetry.MetricWALQuarantined),
		replayed:        sink.Counter(telemetry.MetricWALReplayedBatches),
		ckptRetries:     sink.Counter(telemetry.MetricWALCheckpointRetries),

		fsyncSeconds:       sink.Histogram(telemetry.MetricWALFsyncSeconds, telemetry.SecondsBounds()),
		groupCommitSeconds: sink.Histogram(telemetry.MetricWALGroupCommitSeconds, telemetry.SecondsBounds()),
		checkpointSeconds:  sink.Histogram(telemetry.MetricWALCheckpointSeconds, telemetry.SecondsBounds()),
	}
}

func newLog(dim int, opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	return &Log{
		dir:    opts.Dir,
		opts:   opts,
		dim:    dim,
		sink:   opts.Telemetry,
		fail:   opts.Failpoints,
		tracer: opts.Tracer,
		m:      newWALMetrics(opts.Telemetry),
	}, nil
}

// startSpan begins a WAL span: as a child of the batch span riding ctx
// when the summarizer is traced, else as a root span on the log's own
// tracer (standalone checkpoints, recovery). Nil-safe on both paths.
func (l *Log) startSpan(ctx context.Context, name string) *trace.Span {
	if parent := trace.FromContext(ctx); parent != nil {
		return parent.Start(name)
	}
	return l.tracer.Start(name)
}

// Dir returns the directory the log persists into.
func (l *Log) Dir() string { return l.dir }

// NextOrdinal returns the batch ordinal the next append must carry.
func (l *Log) NextOrdinal() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextOrdinal
}

// Poisoned returns the failure that froze the log, or nil while it is
// healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}

// poison freezes the log after err and returns err. The first poisoning
// failure is retained; later operations fail with it wrapped in
// ErrPoisoned.
func (l *Log) poison(err error) error {
	if l.poisoned == nil {
		l.poisoned = fmt.Errorf("%w: %w", ErrPoisoned, err)
	}
	return err
}

func (l *Log) emit(e telemetry.Event) {
	if l.sink == nil {
		return
	}
	l.sink.Emit(e)
}

// BeforeApply implements core.Durability: it makes the batch durable
// before the summarizer mutates anything. During recovery replay it only
// verifies the ordinal — the batch is already on stable storage.
//
// Failure semantics: an error before any byte reaches the segment (a
// rejected encode, an injected error with nothing written) leaves the log
// healthy and the batch simply not applied. Any failure that may have
// left bytes behind — a torn write, a short write that could not be
// rolled back, a failed fsync — poisons the log: the tail state on disk
// is unknown, so further appends are refused and the caller must Resume.
func (l *Log) BeforeApply(ctx context.Context, ordinal uint64, batch dataset.Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return l.poisoned
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if ordinal != l.nextOrdinal {
		return l.poison(fmt.Errorf("wal: batch ordinal %d, expected %d", ordinal, l.nextOrdinal))
	}
	if l.replaying {
		l.nextOrdinal++
		l.m.replayed.Inc()
		return nil
	}
	if l.opts.GroupCommit > 0 {
		// Group mode: the record may already be durable (acked by a
		// shared fsync), or appended and awaiting one — consume the ack
		// or flush on demand. Only a record never enqueued falls through
		// to the serial append-and-sync below (a group of one), which
		// keeps the core.Durability contract for direct ApplyBatch calls.
		if handled, err := l.groupBeforeApply(ctx, ordinal); handled {
			return err
		}
	}
	sp := l.startSpan(ctx, "wal.append")
	defer sp.End()
	sp.SetInt(trace.AttrOrdinal, int64(ordinal))
	payload, err := encodePayload(l.dim, ordinal, batch)
	if err != nil {
		return err
	}
	frame := frameRecord(payload)
	sp.SetInt(trace.AttrBytes, int64(len(frame)))
	keep, injected := l.fail.HitWrite(FailAppendWrite, len(frame))
	if injected == nil {
		keep, injected = l.fail.HitWrite(FailAppendNoSpace, keep)
	}
	var wrote int
	var werr error
	if keep > 0 {
		wrote, werr = l.f.Write(frame[:keep])
	}
	if injected != nil {
		if wrote > 0 {
			// A torn write: persist the partial frame the way a power
			// loss would, then freeze.
			_ = l.f.Sync()
			return l.poison(injected)
		}
		if errors.Is(injected, failpoint.ErrNoSpace) {
			// Disk full is fail-stop even with nothing written: see
			// FailAppendNoSpace.
			return l.poison(injected)
		}
		return injected // nothing written; log still healthy
	}
	if werr != nil {
		// Real write error: try to roll the segment back to the
		// pre-append boundary; only a clean rollback keeps the log alive.
		if rerr := l.rollbackAppend(); rerr != nil {
			return l.poison(fmt.Errorf("wal: append failed (%v) and rollback failed: %w", werr, rerr))
		}
		return fmt.Errorf("wal: appending batch %d: %w", ordinal, werr)
	}
	if err := l.fail.Hit(FailAppendSync); err != nil {
		return l.poison(err)
	}
	if !l.opts.NoSync {
		fsp := sp.Start("wal.fsync")
		fsp.SetInt(trace.AttrBytes, int64(len(frame)))
		syncStart := time.Now()
		err := l.f.Sync()
		l.m.fsyncSeconds.Observe(time.Since(syncStart).Seconds())
		fsp.End()
		if err != nil {
			return l.poison(fmt.Errorf("wal: syncing batch %d: %w", ordinal, err))
		}
		l.m.syncs.Inc()
	}
	l.segSize += int64(len(frame))
	l.nextOrdinal++
	l.m.appends.Inc()
	l.m.appendBytes.Add(uint64(len(frame)))
	return nil
}

// rollbackAppend rewinds the segment to the pre-append boundary after a
// failed write. os.File.Truncate does not move the file offset, so the
// offset is seeked back explicitly — without the seek the next append
// would land past the boundary, leaving a zero-filled gap that recovery
// reads as a corrupt tail and truncates, silently dropping every record
// after it.
func (l *Log) rollbackAppend() error {
	if err := l.f.Truncate(l.segSize); err != nil {
		return err
	}
	_, err := l.f.Seek(l.segSize, io.SeekStart)
	return err
}

// AfterApply implements core.Durability. On a clean apply it counts the
// batch toward the automatic checkpoint cadence; when the apply failed
// mid-mutation it poisons the log — the batch is durable but the
// in-memory summary is in an unknown intermediate state, so the log (the
// durable truth) stops advancing until the caller resumes from disk.
func (l *Log) AfterApply(ctx context.Context, s *core.Summarizer, applyErr error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if applyErr != nil {
		if !l.replaying {
			_ = l.poison(fmt.Errorf("apply failed after batch was logged: %w", applyErr))
		}
		return nil // never mask the apply error
	}
	if l.replaying || l.poisoned != nil || l.closed {
		return nil
	}
	if l.opts.GroupCommit > 0 {
		// Group mode: cadence checkpoints run asynchronously, initiated
		// by the scheduler at a batch boundary (StartAsyncCheckpoint) so
		// the apply path never stalls on checkpoint encoding or I/O. A
		// completed async checkpoint's failure surfaces here, exactly
		// where a synchronous checkpoint failure would have.
		l.sinceCkpt++
		if l.sinceCkpt >= l.opts.CheckpointEvery {
			l.group.ckptDue = true
		}
		if err := l.group.asyncErr; err != nil {
			l.group.asyncErr = nil
			return err
		}
		return nil
	}
	l.sinceCkpt++
	if l.sinceCkpt >= l.opts.CheckpointEvery {
		return l.checkpoint(ctx, s)
	}
	return nil
}

// Checkpoint atomically persists s (database + bubble snapshot) and
// rotates the WAL to a fresh segment: write to a temp file, fsync,
// rename into place, fsync the directory. A checkpoint failure does not
// poison the log — the previous checkpoint plus the intact WAL still
// reconstruct the state — so the caller may keep applying batches and
// retry at the next cadence point.
func (l *Log) Checkpoint(s *core.Summarizer) error {
	if err := l.AsyncBarrier(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint(context.Background(), s)
}

// checkpoint is Checkpoint with the caller's context, so a checkpoint
// taken by AfterApply's cadence nests its span under the batch span.
func (l *Log) checkpoint(ctx context.Context, s *core.Summarizer) error {
	if l.poisoned != nil {
		return l.poisoned
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if uint64(s.Batches()) != l.nextOrdinal {
		return fmt.Errorf("wal: summarizer at batch %d but log at %d", s.Batches(), l.nextOrdinal)
	}
	sp := l.startSpan(ctx, "wal.checkpoint")
	defer sp.End()
	ckptStart := time.Now()
	data, err := encodeCheckpoint(s)
	if err != nil {
		return err
	}
	ordinal := uint64(s.Batches())
	sp.SetInt(trace.AttrOrdinal, int64(ordinal))
	sp.SetInt(trace.AttrBytes, int64(len(data)))
	if err := l.retryCheckpointWrite(ctx, func() error {
		return l.writeCheckpointFile(sp, ordinal, data)
	}); err != nil {
		return fmt.Errorf("wal: checkpoint %d: %w", ordinal, err)
	}
	l.sinceCkpt = 0
	l.m.checkpoints.Inc()
	l.m.checkpointBytes.Add(uint64(len(data)))
	l.m.checkpointSeconds.Observe(time.Since(ckptStart).Seconds())
	l.lastCkpt.Store(wallNanos())
	l.emit(telemetry.Event{Kind: telemetry.KindCheckpoint, Batch: int(ordinal), A: int(ordinal), N: len(data)})
	if err := l.rotate(); err != nil {
		return err
	}
	return l.gc()
}

// retryCheckpointWrite runs one checkpoint file-write attempt under the
// configured CheckpointRetry policy. This replaces the layer's ad-hoc
// single-shot discipline with bounded in-place attempts: the zero
// policy still performs exactly one, and the cadence re-arm (serial:
// sinceCkpt keeps counting; group: ckptDue re-set on failure) remains
// the outer fallback once attempts are exhausted. The classifier is
// owned here and never retries a simulated crash — by the failpoint
// convention the process is dead at that instant — while everything
// else (ENOSPC on the temp write, a failed rename) is retryable
// because a failed attempt leaves only an invisible temp file behind.
func (l *Log) retryCheckpointWrite(ctx context.Context, op func() error) error {
	return retry.Do(ctx, l.checkpointRetryPolicy(), func(context.Context) error { return op() })
}

// checkpointRetryPolicy resolves the caller's CheckpointRetry tuning
// with the log-owned classifier and telemetry callback.
func (l *Log) checkpointRetryPolicy() retry.Policy {
	p := l.opts.CheckpointRetry
	p.Retryable = func(err error) bool { return !errors.Is(err, failpoint.ErrCrash) }
	p.OnAttempt = func(a retry.Attempt) {
		if !a.Last {
			l.m.ckptRetries.Inc()
			l.emit(telemetry.Event{Kind: telemetry.KindRetry, A: a.N, N: int(a.Delay)})
		}
	}
	return p
}

// writeCheckpointFile performs the write-temp → fsync → rename → fsync-dir
// dance. A leftover temp file from an interrupted attempt is invisible to
// recovery and overwritten by the next attempt.
func (l *Log) writeCheckpointFile(sp *trace.Span, ordinal uint64, data []byte) error {
	final := filepath.Join(l.dir, ckptName(ordinal))
	tmp := final + tmpSuffix
	keep, injected := l.fail.HitWrite(FailCkptWrite, len(data))
	if injected == nil {
		keep, injected = l.fail.HitWrite(FailCheckpointNoSpace, keep)
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if keep > 0 {
		if _, werr := f.Write(data[:keep]); werr != nil {
			_ = f.Close()
			return werr
		}
	}
	if injected != nil {
		_ = f.Sync()
		_ = f.Close()
		return injected
	}
	if err := l.fail.Hit(FailCkptSync); err != nil {
		_ = f.Close()
		return err
	}
	fsp := sp.Start("wal.fsync")
	fsp.SetInt(trace.AttrBytes, int64(len(data)))
	serr := f.Sync()
	fsp.End()
	if serr != nil {
		_ = f.Close()
		return serr
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fail.Hit(FailCkptRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(l.dir)
}

// rotate closes the current segment and opens a fresh one named after the
// next ordinal, so each checkpoint starts an empty replay suffix.
func (l *Log) rotate() error {
	if err := l.fail.Hit(FailCkptRotate); err != nil {
		return err
	}
	if l.f != nil {
		_ = l.f.Sync()
		if err := l.f.Close(); err != nil {
			l.f = nil
			return l.poison(err)
		}
		l.f = nil
	}
	return l.openSegment(l.nextOrdinal)
}

// openSegment creates (or truncates) the segment for batches ≥ first and
// makes it the append target. Truncation is safe: a pre-existing file of
// the same name can only be an empty or torn leftover of a crashed run —
// every decodable record below first has already been replayed or
// checkpointed.
func (l *Log) openSegment(first uint64) error {
	path := filepath.Join(l.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return l.poison(err)
	}
	if _, err := f.WriteString(segmentMagic); err != nil {
		_ = f.Close()
		return l.poison(err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return l.poison(err)
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		return l.poison(err)
	}
	l.f = f
	l.segSize = int64(len(segmentMagic))
	return nil
}

// gc removes checkpoints beyond the retention window and segments wholly
// covered by the oldest retained checkpoint. Removal failures are left
// for the next cadence point; only an injected fault surfaces.
func (l *Log) gc() error {
	if err := l.fail.Hit(FailCkptGC); err != nil {
		return err
	}
	ckpts, segs, err := listState(l.dir)
	if err != nil || len(ckpts) == 0 {
		return nil
	}
	if len(ckpts) > l.opts.KeepCheckpoints {
		for _, c := range ckpts[:len(ckpts)-l.opts.KeepCheckpoints] {
			_ = os.Remove(c.path)
		}
		ckpts = ckpts[len(ckpts)-l.opts.KeepCheckpoints:]
	}
	oldest := ckpts[0].ordinal
	// Segment i spans ordinals [segs[i].ordinal, segs[i+1].ordinal): it is
	// disposable only when that whole span is at or below the oldest
	// retained checkpoint. The newest segment is never removed.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].ordinal <= oldest {
			_ = os.Remove(segs[i].path)
		}
	}
	return nil
}

// Close syncs and closes the current segment. The durable state stays
// resumable; Close only ends this process's append session. An async
// checkpoint still in flight is awaited first; its failure is reported
// but never blocks the close.
func (l *Log) Close() error {
	asyncErr := l.AsyncBarrier()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return asyncErr
	}
	l.closed = true
	if l.f == nil {
		return asyncErr
	}
	// Sync whenever the log is healthy: under NoSync this is the one
	// place the documented "durable at Close" promise is kept (with
	// per-append syncs it is a cheap no-op).
	err := asyncErr
	if l.poisoned == nil {
		if serr := l.f.Sync(); err == nil && serr != nil {
			err = serr
		}
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	l.f = nil
	return err
}

// fileRef is one on-disk segment or checkpoint, with the ordinal parsed
// from its name.
type fileRef struct {
	path    string
	ordinal uint64
}

// listState enumerates the checkpoints and segments in dir, each sorted
// by ascending ordinal. Temp files, quarantined files and foreign names
// are ignored.
func listState(dir string) (ckpts, segs []fileRef, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if ord, ok := parseName(name, ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, fileRef{path: filepath.Join(dir, name), ordinal: ord})
		} else if ord, ok := parseName(name, segmentPrefix, segmentSuffix); ok {
			segs = append(segs, fileRef{path: filepath.Join(dir, name), ordinal: ord})
		}
	}
	sort.Slice(ckpts, func(a, b int) bool { return ckpts[a].ordinal < ckpts[b].ordinal })
	sort.Slice(segs, func(a, b int) bool { return segs[a].ordinal < segs[b].ordinal })
	return ckpts, segs, nil
}

func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(digits) != ordinalDigits {
		return 0, false
	}
	ord, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return ord, true
}

// syncDir fsyncs a directory so a rename or create within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
