package wal

import (
	"bytes"
	"context"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/neighbor"
	"incbubbles/internal/synth"
)

// TestNeighborKindFingerprintParity is the end-to-end determinism
// contract of the NeighborIndex refactor: full summarizer runs over two
// paper scenarios must produce byte-identical checkpoint fingerprints
// under -neighbor=dense and -neighbor=fastpair. The index only changes
// which distances are cached versus recomputed — never a distance value —
// so every assignment, merge and split decision is identical.
func TestNeighborKindFingerprintParity(t *testing.T) {
	scenarios := []struct {
		name string
		kind synth.Kind
	}{
		{"complex", synth.Complex},
		{"extreme-appear", synth.ExtremeAppear},
		{"random", synth.Random},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(nk neighbor.Kind) []byte {
				gen, err := synth.NewScenario(synth.Config{
					Kind: sc.kind, InitialPoints: 600, Batches: 6, Seed: 33,
				})
				if err != nil {
					t.Fatalf("scenario: %v", err)
				}
				db := gen.DB().Clone()
				opts := coreOpts()
				opts.Neighbor = nk
				s, err := core.New(db, opts)
				if err != nil {
					t.Fatalf("core.New: %v", err)
				}
				for i := 0; i < 6; i++ {
					b, err := gen.NextBatch()
					if err != nil {
						t.Fatalf("batch %d: %v", i, err)
					}
					applied, err := applyToDB(db, b)
					if err != nil {
						t.Fatalf("batch %d apply: %v", i, err)
					}
					if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
						t.Fatalf("batch %d: %v", i, err)
					}
				}
				fp, err := Fingerprint(s)
				if err != nil {
					t.Fatalf("fingerprint: %v", err)
				}
				return fp
			}
			dense := run(neighbor.KindDense)
			fastpair := run(neighbor.KindFastPair)
			if !bytes.Equal(dense, fastpair) {
				t.Fatal("checkpoint fingerprints differ between dense and fastpair")
			}
		})
	}
}

// TestCheckpointRestoreAcrossKinds saves under one index kind and resumes
// under the other: snapshots carry no index state, so the continued runs
// must stay fingerprint-identical.
func TestCheckpointRestoreAcrossKinds(t *testing.T) {
	f := makeFixture(t, 400, 6)
	run := func(saveKind, resumeKind neighbor.Kind) []byte {
		dir := t.TempDir()
		db := f.initial.Clone()
		opts := coreOpts()
		opts.Neighbor = saveKind
		s, l, err := New(db, opts, Options{Dir: dir, CheckpointEvery: 1})
		if err != nil {
			t.Fatalf("wal.New: %v", err)
		}
		for i := 0; i < 3; i++ {
			applied, err := applyToDB(db, f.batches[i])
			if err != nil {
				t.Fatalf("batch %d apply: %v", i, err)
			}
			if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		resumeOpts := coreOpts()
		resumeOpts.Neighbor = resumeKind
		st, err := Resume(resumeOpts, Options{Dir: dir, CheckpointEvery: 1})
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if st.Summarizer.Set().NeighborKind() != resumeKind {
			t.Fatalf("resumed with kind %q, want %q", st.Summarizer.Set().NeighborKind(), resumeKind)
		}
		for i := st.Batches; i < len(f.batches); i++ {
			applied, err := applyToDB(st.DB, f.batches[i])
			if err != nil {
				t.Fatalf("batch %d apply: %v", i, err)
			}
			if _, err := st.Summarizer.ApplyBatchContext(context.Background(), applied); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		return fingerprint(t, st.Summarizer)
	}
	want := run(neighbor.KindDense, neighbor.KindDense)
	for _, c := range []struct{ save, resume neighbor.Kind }{
		{neighbor.KindDense, neighbor.KindFastPair},
		{neighbor.KindFastPair, neighbor.KindDense},
		{neighbor.KindFastPair, neighbor.KindFastPair},
	} {
		if got := run(c.save, c.resume); !bytes.Equal(got, want) {
			t.Fatalf("save=%s resume=%s fingerprint differs from dense/dense", c.save, c.resume)
		}
	}
}
