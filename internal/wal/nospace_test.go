package wal

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/retry"
	"incbubbles/internal/telemetry"
)

// noSleep is the retry sleep seam for tests: schedules are pinned by
// the retry package's own suite, so WAL tests skip the waiting.
func noSleep(context.Context, time.Duration) error { return nil }

// TestNoSpaceMatrix pins the disk-full semantics cell by cell:
// append-ENOSPC is fail-stop (the log poisons, even with zero bytes
// written, and recovery converges back to the oracle), while
// checkpoint-ENOSPC — on the temp write or the rename — is retryable:
// the run keeps applying batches, no acked batch is ever dropped, and
// the final state is bit-identical to the uninterrupted run.
func TestNoSpaceMatrix(t *testing.T) {
	f := makeFixture(t, 400, 8)
	walBase := Options{CheckpointEvery: 2, KeepCheckpoints: 2}
	want := runAll(t, f, t.TempDir(), walBase)

	cases := []struct {
		name  string
		arm   func(reg *failpoint.Registry)
		fatal bool // append semantics: the run dies poisoned
	}{
		{"append/error/hit1", func(r *failpoint.Registry) { r.ArmError(FailAppendNoSpace, 1, failpoint.ErrNoSpace) }, true},
		{"append/error/hit2", func(r *failpoint.Registry) { r.ArmError(FailAppendNoSpace, 2, failpoint.ErrNoSpace) }, true},
		{"append/torn/hit1", func(r *failpoint.Registry) { r.ArmTornError(FailAppendNoSpace, 1, nil) }, true},
		{"append/torn/hit2", func(r *failpoint.Registry) { r.ArmTornError(FailAppendNoSpace, 2, nil) }, true},
		{"ckpt/error/hit1", func(r *failpoint.Registry) { r.ArmError(FailCheckpointNoSpace, 1, failpoint.ErrNoSpace) }, false},
		{"ckpt/torn/hit1", func(r *failpoint.Registry) { r.ArmTornError(FailCheckpointNoSpace, 1, nil) }, false},
		{"ckpt/rename/hit1", func(r *failpoint.Registry) { r.ArmError(FailCkptRename, 1, failpoint.ErrNoSpace) }, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := f.initial.Clone()
			reg := failpoint.New(7)
			opts := coreOpts()
			opts.Failpoints = reg
			walOpts := walBase.withDir(dir)
			walOpts.Failpoints = reg
			s, l, err := New(db, opts, walOpts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			// Arm only after construction so the initial checkpoint's
			// evaluations don't consume the hit count.
			tc.arm(reg)

			var injected error
			var killedBatch dataset.Batch
			applied := 0
			for i, b := range f.batches {
				ab, err := applyToDB(db, b)
				if err != nil {
					t.Fatalf("batch %d apply: %v", i, err)
				}
				if _, err := s.ApplyBatchContext(context.Background(), ab); err != nil {
					injected = err
					killedBatch = ab
					if tc.fatal {
						break // simulated kill: abandon everything
					}
					// Retryable checkpoint failure: the batch itself is
					// applied and durable; keep ingesting.
					if !errors.Is(err, failpoint.ErrNoSpace) {
						t.Fatalf("batch %d: %v, want ENOSPC", i, err)
					}
					if l.Poisoned() != nil {
						t.Fatalf("checkpoint ENOSPC poisoned the log: %v", l.Poisoned())
					}
				}
				applied++
			}
			if injected == nil {
				t.Fatal("armed ENOSPC failpoint never fired")
			}

			if tc.fatal {
				if !errors.Is(injected, failpoint.ErrNoSpace) {
					t.Fatalf("append died with %v, want ENOSPC", injected)
				}
				if perr := l.Poisoned(); perr == nil || !errors.Is(perr, ErrPoisoned) {
					t.Fatalf("append ENOSPC did not poison the log (poisoned=%v)", perr)
				}
				// Fail-stop: the poisoned log refuses further appends (the
				// dying batch's DB image is already in place, so re-offer
				// the same applied batch).
				if _, err := s.ApplyBatchContext(context.Background(), killedBatch); !errors.Is(err, ErrPoisoned) {
					t.Fatalf("poisoned log accepted an append (err=%v)", err)
				}
			} else {
				if applied != len(f.batches) {
					t.Fatalf("retryable checkpoint failure stopped ingest at %d/%d", applied, len(f.batches))
				}
				if got := fingerprint(t, s); !bytes.Equal(got, want) {
					t.Fatal("run with checkpoint ENOSPC differs from uninterrupted run")
				}
			}

			// Recovery (fatal cells) / restart (retryable cells) converges
			// to the oracle: resume from disk, finish any unapplied
			// batches, compare fingerprints. For the retryable cells this
			// doubles as the no-acked-batch-dropped proof — every applied
			// batch must come back from the checkpoint + WAL suffix.
			st, err := Resume(coreOpts(), walBase.withDir(dir))
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !tc.fatal && st.Batches != len(f.batches) {
				t.Fatalf("restart lost acked batches: resumed at %d, want %d", st.Batches, len(f.batches))
			}
			for i := st.Batches; i < len(f.batches); i++ {
				ab, err := applyToDB(st.DB, f.batches[i])
				if err != nil {
					t.Fatalf("batch %d apply: %v", i, err)
				}
				if _, err := st.Summarizer.ApplyBatchContext(context.Background(), ab); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
				t.Fatal("recovered run differs from uninterrupted run")
			}
		})
	}
}

// TestCheckpointRetryAbsorbsNoSpace proves the bounded in-place retry:
// with a CheckpointRetry policy of three attempts, a single injected
// ENOSPC on the checkpoint temp write is absorbed inside the cadence
// checkpoint — no error ever surfaces to the ingest loop — and the
// retry is visible in wal.checkpoint_retries.
func TestCheckpointRetryAbsorbsNoSpace(t *testing.T) {
	f := makeFixture(t, 400, 8)
	walBase := Options{CheckpointEvery: 2, KeepCheckpoints: 2}
	want := runAll(t, f, t.TempDir(), walBase)

	dir := t.TempDir()
	db := f.initial.Clone()
	reg := failpoint.New(7)
	sink := telemetry.NewSink()
	opts := coreOpts()
	opts.Failpoints = reg
	walOpts := walBase.withDir(dir)
	walOpts.Failpoints = reg
	walOpts.Telemetry = sink
	walOpts.CheckpointRetry = retry.Policy{MaxAttempts: 3, Seed: 11, Sleep: noSleep}
	s, l, err := New(db, opts, walOpts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg.ArmError(FailCheckpointNoSpace, 1, failpoint.ErrNoSpace)
	for i, b := range f.batches {
		ab, err := applyToDB(db, b)
		if err != nil {
			t.Fatalf("batch %d apply: %v", i, err)
		}
		if _, err := s.ApplyBatchContext(context.Background(), ab); err != nil {
			t.Fatalf("batch %d surfaced %v despite retry policy", i, err)
		}
	}
	if got := reg.Hits(FailCheckpointNoSpace); got < 2 {
		t.Fatalf("checkpoint write attempted %d times, want a retry", got)
	}
	if got := sink.Metrics.Counter(telemetry.MetricWALCheckpointRetries).Value(); got != 1 {
		t.Fatalf("wal.checkpoint_retries = %d, want 1", got)
	}
	if got := fingerprint(t, s); !bytes.Equal(got, want) {
		t.Fatal("retried run differs from uninterrupted run")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCheckpointRetryNeverRetriesCrash pins the fail-stop convention in
// the retry classifier: a simulated crash on the checkpoint write is
// never re-attempted, no matter how many attempts the policy allows.
func TestCheckpointRetryNeverRetriesCrash(t *testing.T) {
	f := makeFixture(t, 300, 2)
	dir := t.TempDir()
	db := f.initial.Clone()
	reg := failpoint.New(7)
	opts := coreOpts()
	opts.Failpoints = reg
	walOpts := Options{Dir: dir, CheckpointEvery: 2, Failpoints: reg}
	walOpts.CheckpointRetry = retry.Policy{MaxAttempts: 5, Seed: 11, Sleep: noSleep}
	s, _, err := New(db, opts, walOpts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before := reg.Hits(FailCkptWrite) // the initial checkpoint's evaluation
	reg.ArmCrash(FailCkptWrite, 1)
	var killErr error
	for i, b := range f.batches {
		ab, err := applyToDB(db, b)
		if err != nil {
			t.Fatalf("batch %d apply: %v", i, err)
		}
		if _, err := s.ApplyBatchContext(context.Background(), ab); err != nil {
			killErr = err
			break
		}
	}
	if !errors.Is(killErr, failpoint.ErrCrash) {
		t.Fatalf("armed crash never fired (err=%v)", killErr)
	}
	if got := reg.Hits(FailCkptWrite) - before; got != 1 {
		t.Fatalf("crashed checkpoint write evaluated %d times, want exactly 1 (no retry)", got)
	}
}
