// Package wal is the durability layer: an append-only write-ahead log of
// applied update batches plus atomic checkpoints of the bubble summary
// and its database, so a maintained summary survives process crashes.
//
// A batch is logged before it is applied (core.Durability wires the hook
// order) and every batch under durability runs from an RNG state derived
// only from (seed, ordinal), so recovery — newest valid checkpoint +
// deterministic replay of the WAL suffix — reproduces the uninterrupted
// run bit-for-bit. Corruption degrades gracefully instead of dying: a
// torn WAL tail is truncated at the first bad record, a corrupt
// checkpoint falls back to the previous one, and a post-replay audit
// failure quarantines the checkpoint and rebuilds from an older one
// (DESIGN.md §10 documents the ladder).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"incbubbles/internal/dataset"
	"incbubbles/internal/vecmath"
)

// Segment and record framing. A segment starts with segmentMagic; each
// record is framed as u32 payload length, u32 CRC-32 (IEEE) of the
// payload, then the payload. All integers are little-endian.
const (
	segmentMagic = "IBWAL001"
	frameBytes   = 8 // u32 len + u32 crc
	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot drive a giant allocation during recovery.
	maxRecordBytes = 64 << 20
)

// Payload layout: recType byte, u64 batch ordinal, u32 dimensionality,
// u32 update count, then the updates. An insert carries op, ID, label and
// coordinates; a delete carries op and ID only — replay re-resolves the
// victim's coordinates from the database, exactly like the live path.
const (
	recBatch  = 1
	opInsert  = 1
	opDelete  = 2
	updHeader = 1 + 8 // op byte + u64 id
)

// Codec errors surfaced by recovery; all of them mean "stop replay at the
// previous record".
var (
	ErrBadMagic  = errors.New("wal: bad segment magic")
	ErrTornTail  = errors.New("wal: torn record at segment tail")
	ErrBadCRC    = errors.New("wal: record CRC mismatch")
	ErrBadRecord = errors.New("wal: malformed record payload")
)

// ErrRecordTooLarge rejects a batch whose encoding would exceed
// maxRecordBytes. It surfaces from BeforeApply before any byte reaches
// the segment — recovery's scanner refuses such frames, so acking one as
// durable would be a lie. The caller must split the batch.
var ErrRecordTooLarge = errors.New("wal: batch exceeds the maximum record size")

// record is one decoded WAL record, with the provenance recovery needs
// to repair the log in place: the segment it was scanned from and the
// byte offset of its frame within that segment.
type record struct {
	ordinal uint64
	dim     int
	batch   dataset.Batch
	seg     string
	off     int64
}

// appendUint32/appendUint64 are little-endian append helpers.
func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// encodePayload serializes one applied batch. Inserts must already carry
// their assigned IDs (ApplyBatch receives applied batches), and every
// coordinate must be finite — the database guarantees both. The size is
// computed (and the updates validated) up front so an oversized batch is
// rejected without allocating its encoding: maxRecordBytes must hold on
// the write side too, or the scanner would refuse a frame that was
// already acked as durable.
func encodePayload(dim int, ordinal uint64, batch dataset.Batch) ([]byte, error) {
	size := 1 + 8 + 4 + 4
	for i, u := range batch {
		switch u.Op {
		case dataset.OpInsert:
			if u.P.Dim() != dim {
				return nil, fmt.Errorf("wal: update %d: dimensionality %d != %d", i, u.P.Dim(), dim)
			}
			size += updHeader + 8 + dim*8
		case dataset.OpDelete:
			size += updHeader
		default:
			return nil, fmt.Errorf("wal: update %d: unknown op %v", i, u.Op)
		}
	}
	if size > maxRecordBytes {
		return nil, fmt.Errorf("%w: batch %d encodes to %d bytes (limit %d); split the batch",
			ErrRecordTooLarge, ordinal, size, maxRecordBytes)
	}
	payload := make([]byte, 0, size)
	payload = append(payload, recBatch)
	payload = appendUint64(payload, ordinal)
	payload = appendUint32(payload, uint32(dim))
	payload = appendUint32(payload, uint32(len(batch)))
	for _, u := range batch {
		switch u.Op {
		case dataset.OpInsert:
			payload = append(payload, opInsert)
			payload = appendUint64(payload, uint64(u.ID))
			payload = appendUint64(payload, uint64(int64(u.Label)))
			for _, v := range u.P {
				payload = appendUint64(payload, math.Float64bits(v))
			}
		case dataset.OpDelete:
			payload = append(payload, opDelete)
			payload = appendUint64(payload, uint64(u.ID))
		}
	}
	return payload, nil
}

// frameRecord wraps payload in the length+CRC frame.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 0, frameBytes+len(payload))
	out = appendUint32(out, uint32(len(payload)))
	out = appendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// decodePayload parses one CRC-verified payload.
func decodePayload(payload []byte) (record, error) {
	var rec record
	if len(payload) < 1+8+4+4 {
		return rec, fmt.Errorf("%w: %d-byte payload", ErrBadRecord, len(payload))
	}
	if payload[0] != recBatch {
		return rec, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, payload[0])
	}
	rec.ordinal = binary.LittleEndian.Uint64(payload[1:])
	dim := binary.LittleEndian.Uint32(payload[9:])
	count := binary.LittleEndian.Uint32(payload[13:])
	if dim == 0 || dim > maxRecordBytes/8 {
		return rec, fmt.Errorf("%w: dimensionality %d", ErrBadRecord, dim)
	}
	rec.dim = int(dim)
	body := payload[17:]
	// Every update is at least updHeader bytes, so a hostile count cannot
	// force a large allocation past the payload it arrived in.
	if uint64(count)*updHeader > uint64(len(body)) {
		return rec, fmt.Errorf("%w: %d updates in %d bytes", ErrBadRecord, count, len(body))
	}
	rec.batch = make(dataset.Batch, 0, count)
	off := 0
	for i := uint32(0); i < count; i++ {
		if off+updHeader > len(body) {
			return rec, fmt.Errorf("%w: truncated update %d", ErrBadRecord, i)
		}
		op := body[off]
		id := dataset.PointID(binary.LittleEndian.Uint64(body[off+1:]))
		off += updHeader
		switch op {
		case opInsert:
			need := 8 + rec.dim*8
			if off+need > len(body) {
				return rec, fmt.Errorf("%w: truncated insert %d", ErrBadRecord, i)
			}
			label := int(int64(binary.LittleEndian.Uint64(body[off:])))
			off += 8
			p := make(vecmath.Point, rec.dim)
			for d := 0; d < rec.dim; d++ {
				p[d] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
				off += 8
			}
			rec.batch = append(rec.batch, dataset.Update{Op: dataset.OpInsert, ID: id, P: p, Label: label})
		case opDelete:
			rec.batch = append(rec.batch, dataset.Update{Op: dataset.OpDelete, ID: id})
		default:
			return rec, fmt.Errorf("%w: unknown op %d in update %d", ErrBadRecord, op, i)
		}
	}
	if off != len(body) {
		return rec, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(body)-off)
	}
	return rec, nil
}

// scanSegment parses segment bytes: the magic, then records until the
// data ends or goes bad. It returns the decoded records and the byte
// length of the valid prefix (magic included). tailErr is non-nil when
// trailing bytes had to be abandoned — a torn frame, a CRC mismatch or a
// malformed payload — and recovery truncates the segment there; the
// records before the bad tail remain usable.
func scanSegment(data []byte) (recs []record, validLen int, tailErr error) {
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return nil, 0, ErrBadMagic
	}
	off := len(segmentMagic)
	for off < len(data) {
		if off+frameBytes > len(data) {
			return recs, off, fmt.Errorf("%w: %d frame bytes", ErrTornTail, len(data)-off)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes {
			return recs, off, fmt.Errorf("%w: implausible record length %d", ErrBadCRC, n)
		}
		if off+frameBytes+int(n) > len(data) {
			return recs, off, fmt.Errorf("%w: %d of %d payload bytes", ErrTornTail, len(data)-off-frameBytes, n)
		}
		payload := data[off+frameBytes : off+frameBytes+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, ErrBadCRC
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, err
		}
		rec.off = int64(off)
		recs = append(recs, rec)
		off += frameBytes + int(n)
	}
	return recs, off, nil
}
