package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/trace"
)

// ErrNoState reports a Resume against a directory with no checkpoint to
// recover from.
var ErrNoState = errors.New("wal: no durable state to resume")

// HasState reports whether dir holds any WAL segment or checkpoint, i.e.
// whether Resume rather than New is the right entry point.
func HasState(dir string) bool {
	ckpts, segs, err := listState(dir)
	return err == nil && (len(ckpts) > 0 || len(segs) > 0)
}

// New builds a fresh durable summarizer: it creates the WAL directory,
// opens segment 0, constructs the summarizer over db with the log wired
// in as its durability layer, and takes checkpoint 0 so the directory is
// resumable from the first moment. The directory must not already hold
// durable state — Resume owns that case.
func New(db *dataset.DB, coreOpts core.Options, walOpts Options) (*core.Summarizer, *Log, error) {
	walOpts = walOpts.withDefaults()
	if HasState(walOpts.Dir) {
		return nil, nil, fmt.Errorf("wal: %s already holds durable state, use Resume", walOpts.Dir)
	}
	l, err := newLog(db.Dim(), walOpts)
	if err != nil {
		return nil, nil, err
	}
	if err := l.openSegment(0); err != nil {
		return nil, nil, err
	}
	coreOpts.Durability = l
	if coreOpts.Failpoints == nil {
		coreOpts.Failpoints = walOpts.Failpoints
	}
	s, err := core.New(db, coreOpts)
	if err != nil {
		_ = l.Close()
		return nil, nil, err
	}
	if err := l.Checkpoint(s); err != nil {
		_ = l.Close()
		return nil, nil, fmt.Errorf("wal: initial checkpoint: %w", err)
	}
	return s, l, nil
}

// RecoveredState is the result of a Resume: the reconstructed summarizer
// and database, the reopened log, and how recovery got there.
type RecoveredState struct {
	Summarizer *core.Summarizer
	DB         *dataset.DB
	Log        *Log
	// Batches is the batch ordinal the summarizer resumed at.
	Batches int
	// Replayed counts the WAL records re-applied on top of the checkpoint.
	Replayed int
}

// Resume reconstructs the summarizer persisted in walOpts.Dir and reopens
// the log for further appends. Recovery degrades gracefully down a
// ladder: WAL segments are truncated at their first undecodable record;
// checkpoints are tried newest-first, and one that fails to decode, to
// rebuild, or to pass the post-replay invariant audit is quarantined
// (renamed aside, never deleted) before falling back to the next; only
// when no checkpoint survives does Resume fail. coreOpts must carry the
// same Seed and Config as the original run — replay determinism derives
// every batch's randomness from (seed, ordinal).
func Resume(coreOpts core.Options, walOpts Options) (*RecoveredState, error) {
	walOpts = walOpts.withDefaults()
	sink := walOpts.Telemetry
	m := newWALMetrics(sink)
	rsp := walOpts.Tracer.Start("wal.recover")
	defer rsp.End()
	ckpts, segs, err := listState(walOpts.Dir)
	if err != nil {
		return nil, err
	}
	if len(ckpts) == 0 {
		return nil, fmt.Errorf("%w: no checkpoint in %s", ErrNoState, walOpts.Dir)
	}
	ssp := rsp.Start("wal.scan")
	ssp.SetInt(trace.AttrCount, int64(len(segs)))
	records, err := scanAndRepair(segs, sink, m)
	ssp.End()
	if err != nil {
		return nil, err
	}
	// The checkpoint ladder: newest first, quarantine what can't be
	// trusted, fall back.
	var fails []error
	for i := len(ckpts) - 1; i >= 0; i-- {
		st, err := tryRecover(ckpts[i], records, coreOpts, walOpts, rsp)
		// A record that decodes but cannot be re-applied is WAL damage,
		// not checkpoint damage: every older checkpoint would replay
		// through the same record and the whole ladder would drown.
		// Truncate the log just before it and retry the same checkpoint —
		// that recovers strictly more state than falling back. Each repair
		// removes at least one record, so the loop terminates.
		var rf *replayFault
		for errors.As(err, &rf) {
			if rerr := truncateAtFault(rf, records, &segs, sink, m); rerr != nil {
				err = errors.Join(err, rerr)
				break
			}
			st, err = tryRecover(ckpts[i], records, coreOpts, walOpts, rsp)
		}
		if err == nil {
			return st, nil
		}
		fails = append(fails, fmt.Errorf("%s: %w", ckpts[i].path, err))
		quarantine(ckpts[i].path, sink, m)
	}
	return nil, fmt.Errorf("wal: no usable checkpoint in %s: %w", walOpts.Dir, errors.Join(fails...))
}

// replayFault identifies a WAL record that decoded cleanly (framed, CRC
// intact) but could not be re-applied on top of the recovered state. It
// carries the record's provenance so Resume can cut the log just before
// it instead of condemning the checkpoint it was replayed onto.
type replayFault struct {
	ordinal uint64
	seg     string
	off     int64
	err     error
}

func (f *replayFault) Error() string {
	return fmt.Sprintf("wal: replaying batch %d: %v", f.ordinal, f.err)
}

func (f *replayFault) Unwrap() error { return f.err }

// truncateAtFault repairs the WAL after a replay fault: the segment
// holding the bad record is truncated just before its frame, every later
// segment is quarantined (its records follow the removed ordinal and can
// no longer follow any history the rebuilt log will write), and the
// in-memory record map and segment list are trimmed to match the disk.
func truncateAtFault(rf *replayFault, records map[uint64]record, segs *[]fileRef, sink *telemetry.Sink, m walMetrics) error {
	if err := os.Truncate(rf.seg, rf.off); err != nil {
		return fmt.Errorf("wal: truncating %s at replay fault: %w", rf.seg, err)
	}
	m.truncations.Inc()
	if sink != nil {
		sink.Emit(telemetry.Event{Kind: telemetry.KindWALTruncate, Batch: int(rf.ordinal), A: int(rf.off)})
	}
	keep := (*segs)[:0]
	for _, s := range *segs {
		// Zero-padded names make lexical order the ordinal order.
		if s.path > rf.seg {
			quarantine(s.path, sink, m)
			continue
		}
		keep = append(keep, s)
	}
	*segs = keep
	for ord := range records {
		if ord >= rf.ordinal {
			delete(records, ord)
		}
	}
	return nil
}

// scanAndRepair decodes every segment into an ordinal→record map and
// repairs damage in place: a segment with a torn or corrupt tail is
// truncated to its valid prefix, and a segment whose magic is wrong is
// quarantined wholesale.
func scanAndRepair(segs []fileRef, sink *telemetry.Sink, m walMetrics) (map[uint64]record, error) {
	records := make(map[uint64]record)
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", seg.path, err)
		}
		recs, validLen, tailErr := scanSegment(data)
		if errors.Is(tailErr, ErrBadMagic) {
			quarantine(seg.path, sink, m)
			continue
		}
		if tailErr != nil {
			if err := os.Truncate(seg.path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: truncating %s: %w", seg.path, err)
			}
			m.truncations.Inc()
			if sink != nil {
				sink.Emit(telemetry.Event{Kind: telemetry.KindWALTruncate,
					A: validLen, N: len(data) - validLen})
			}
		}
		for _, rec := range recs {
			rec.seg = seg.path
			records[rec.ordinal] = rec
		}
	}
	return records, nil
}

// tryRecover attempts recovery from one checkpoint file: decode, rebuild
// the database and summarizer, replay the consecutive WAL suffix, then
// audit the result. Any failure rejects the checkpoint.
func tryRecover(ck fileRef, records map[uint64]record, coreOpts core.Options, walOpts Options, rsp *trace.Span) (*RecoveredState, error) {
	csp := rsp.Start("wal.try_checkpoint")
	defer csp.End()
	csp.SetInt(trace.AttrOrdinal, int64(ck.ordinal))
	data, err := os.ReadFile(ck.path)
	if err != nil {
		return nil, err
	}
	cp, err := decodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if cp.ordinal != ck.ordinal {
		return nil, fmt.Errorf("%w: ordinal %d in file named %d", ErrBadCheckpoint, cp.ordinal, ck.ordinal)
	}
	db, err := cp.restoreDB()
	if err != nil {
		return nil, err
	}
	l, err := newLog(cp.dim, walOpts)
	if err != nil {
		return nil, err
	}
	l.replaying = true
	l.nextOrdinal = cp.ordinal
	coreOpts.Durability = l
	if coreOpts.Failpoints == nil {
		coreOpts.Failpoints = walOpts.Failpoints
	}
	s, err := core.Load(db, bytes.NewReader(cp.snapshot), coreOpts, int(cp.ordinal), int(cp.totalRebuilt))
	if err != nil {
		return nil, err
	}
	psp := csp.Start("wal.replay")
	replayed, err := replay(s, db, cp, records)
	psp.SetInt(trace.AttrCount, int64(replayed))
	psp.End()
	if err != nil {
		return nil, err
	}
	if err := l.Poisoned(); err != nil {
		return nil, err
	}
	// The recovered summary must be internally consistent before the log
	// accepts new batches on top of it.
	if err := s.Set().CheckInvariants(); err != nil {
		return nil, fmt.Errorf("wal: recovered set: %w", err)
	}
	if vs := s.Audit(); len(vs) > 0 {
		return nil, fmt.Errorf("wal: recovered set fails audit: %v", vs[0])
	}
	l.replaying = false
	if err := l.openSegment(l.nextOrdinal); err != nil {
		return nil, err
	}
	// Count the replayed suffix toward the checkpoint cadence so a long
	// replay is re-checkpointed promptly instead of re-replayed next time.
	l.sinceCkpt = replayed
	if walOpts.Telemetry != nil {
		walOpts.Telemetry.Emit(telemetry.Event{Kind: telemetry.KindRecover,
			Batch: int(cp.ordinal), A: replayed, N: db.Len()})
	}
	return &RecoveredState{
		Summarizer: s,
		DB:         db,
		Log:        l,
		Batches:    s.Batches(),
		Replayed:   replayed,
	}, nil
}

// replay re-applies the consecutive run of logged batches starting at the
// checkpoint ordinal. Ordinals below the checkpoint are already folded
// in; a gap ends replay (records past a gap cannot be trusted to follow
// the recovered state). A record that cannot be re-applied — a dimension
// mismatch, a delete of an ID the database never held, an apply failure —
// surfaces as a *replayFault so Resume can truncate the log at its frame
// and retry, rather than condemning the checkpoint.
func replay(s *core.Summarizer, db *dataset.DB, cp *checkpointData, records map[uint64]record) (int, error) {
	ordinals := make([]uint64, 0, len(records))
	for ord := range records {
		if ord >= cp.ordinal {
			ordinals = append(ordinals, ord)
		}
	}
	sort.Slice(ordinals, func(a, b int) bool { return ordinals[a] < ordinals[b] })
	replayed := 0
	next := cp.ordinal
	for _, ord := range ordinals {
		if ord != next {
			break
		}
		rec := records[ord]
		fault := func(err error) error {
			return &replayFault{ordinal: ord, seg: rec.seg, off: rec.off, err: err}
		}
		if rec.dim != cp.dim {
			return replayed, fault(fmt.Errorf("%w: dimensionality %d != %d", ErrBadRecord, rec.dim, cp.dim))
		}
		batch, err := applyToDB(db, rec.batch)
		if err != nil {
			return replayed, fault(err)
		}
		if _, err := s.ApplyBatchContext(context.Background(), batch); err != nil {
			return replayed, fault(err)
		}
		replayed++
		next++
	}
	return replayed, nil
}

// applyToDB executes a logged batch against the database exactly like the
// live path's Batch.Apply, except inserts restore their logged IDs:
// deletions re-resolve the victim's coordinates, and the summarizer then
// sees the same applied batch it saw in the original run.
func applyToDB(db *dataset.DB, batch dataset.Batch) (dataset.Batch, error) {
	return batch.Replay(db)
}

// quarantine renames a rejected file aside with quarantineSuffix so an
// operator can inspect it; recovery never trusts or deletes it again.
func quarantine(path string, sink *telemetry.Sink, m walMetrics) {
	_ = os.Rename(path, path+quarantineSuffix)
	m.quarantined.Inc()
	if sink != nil {
		sink.Emit(telemetry.Event{Kind: telemetry.KindQuarantine})
	}
}
