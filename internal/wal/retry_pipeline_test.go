package wal_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"incbubbles/internal/failpoint"
	"incbubbles/internal/pipeline"
	"incbubbles/internal/retry"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/wal"
)

// TestAsyncCheckpointRetryAbsorbsFault proves the retry engine replaced
// the ad-hoc re-arm in the pipelined path: a single injected failure on
// the async checkpoint rename is re-attempted in place under
// Options.CheckpointRetry, so no wal.ErrCheckpointRetryable ever
// surfaces on a ticket, the retry is counted, and the final state still
// matches the serial reference bit-for-bit.
func TestAsyncCheckpointRetryAbsorbsFault(t *testing.T) {
	fx := makePipeFixture(t, 400, 8)
	want := serialReference(t, fx)

	dir := t.TempDir()
	reg := failpoint.New(7)
	sink := telemetry.NewSink()
	coreO := pipedCoreOpts()
	coreO.Failpoints = reg
	walOpts := wal.Options{
		Dir: dir, CheckpointEvery: 2, KeepCheckpoints: 2, GroupCommit: 4,
		Failpoints: reg, Telemetry: sink,
		CheckpointRetry: retry.Policy{
			MaxAttempts: 3,
			Seed:        11,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		},
	}
	s, l, err := wal.New(fx.initial.Clone(), coreO, walOpts)
	if err != nil {
		t.Fatalf("wal.New: %v", err)
	}
	sched, err := pipeline.New(s, l, pipeline.Config{Replay: true})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	reg.ArmError(wal.FailAsyncCkptRename, 1, nil)

	if died := runPipelinedWorkload(t, fx, sched, l); died {
		t.Fatal("retried async checkpoint killed the pipeline")
	}
	if err := sched.Close(); err != nil {
		t.Fatalf("close surfaced %v despite retry policy", err)
	}
	if reg.Hits(wal.FailAsyncCkptRename) < 2 {
		t.Fatalf("async rename evaluated %d times, want a retry", reg.Hits(wal.FailAsyncCkptRename))
	}
	if got := sink.Metrics.Counter(telemetry.MetricWALCheckpointRetries).Value(); got != 1 {
		t.Fatalf("wal.checkpoint_retries = %d, want 1", got)
	}
	got, err := wal.Fingerprint(s)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("retried pipelined run differs from serial reference")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("log close: %v", err)
	}
}

// TestGroupAppendNoSpacePoisons pins the disk-full semantics on the
// group-commit append path: a torn ENOSPC on an enqueued record
// fail-stops the tenant's log (poisoned, ingest refused) and serial
// recovery converges back to the oracle.
func TestGroupAppendNoSpacePoisons(t *testing.T) {
	fx := makePipeFixture(t, 400, 8)
	want := serialReference(t, fx)

	dir := t.TempDir()
	reg := failpoint.New(7)
	coreO := pipedCoreOpts()
	coreO.Failpoints = reg
	walOpts := wal.Options{
		Dir: dir, CheckpointEvery: 2, KeepCheckpoints: 2, GroupCommit: 4,
		Failpoints: reg,
	}
	s, l, err := wal.New(fx.initial.Clone(), coreO, walOpts)
	if err != nil {
		t.Fatalf("wal.New: %v", err)
	}
	sched, err := pipeline.New(s, l, pipeline.Config{Replay: true})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	reg.ArmTornError(wal.FailAppendNoSpace, 1, nil)

	died := runPipelinedWorkload(t, fx, sched, l)
	_ = sched.Close()
	if !died {
		t.Fatal("group append ENOSPC never killed the pipeline")
	}
	if perr := l.Poisoned(); perr == nil || !errors.Is(perr, wal.ErrPoisoned) {
		t.Fatalf("group append ENOSPC did not poison the log (poisoned=%v)", perr)
	}
	if !errors.Is(l.Poisoned(), failpoint.ErrNoSpace) {
		t.Fatalf("poison cause = %v, want ENOSPC", l.Poisoned())
	}

	st, err := wal.Resume(serialCoreOpts(), wal.Options{Dir: dir, CheckpointEvery: 2, KeepCheckpoints: 2})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for i := st.Batches; i < len(fx.batches); i++ {
		applied, err := fx.batches[i].Replay(st.DB)
		if err != nil {
			t.Fatalf("batch %d replay: %v", i, err)
		}
		if _, err := st.Summarizer.ApplyBatchContext(context.Background(), applied); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	got, err := wal.Fingerprint(st.Summarizer)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered run differs from serial reference")
	}
}
