package wal

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incbubbles/internal/core"
	"incbubbles/internal/dataset"
	"incbubbles/internal/failpoint"
	"incbubbles/internal/synth"
	"incbubbles/internal/telemetry"
	"incbubbles/internal/vecmath"
)

// fixture is a reproducible workload: an initial database plus applied
// update batches that can be re-applied to clones of the initial state.
type fixture struct {
	initial *dataset.DB
	batches []dataset.Batch
}

func makeFixture(t *testing.T, points, batches int) *fixture {
	t.Helper()
	sc, err := synth.NewScenario(synth.Config{
		Kind: synth.Complex, InitialPoints: points, Batches: batches, Seed: 21,
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	initial := sc.DB().Clone()
	bs := make([]dataset.Batch, batches)
	for i := range bs {
		b, err := sc.NextBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		bs[i] = b
	}
	return &fixture{initial: initial, batches: bs}
}

func coreOpts() core.Options {
	return core.Options{NumBubbles: 12, UseTriangleInequality: true, Seed: 5}
}

// runAll applies every fixture batch through a fresh durable summarizer
// and returns its checkpoint encoding as the state fingerprint.
func runAll(t *testing.T, f *fixture, dir string, walOpts Options) []byte {
	t.Helper()
	walOpts.Dir = dir
	db := f.initial.Clone()
	s, l, err := New(db, coreOpts(), walOpts)
	if err != nil {
		t.Fatalf("wal.New: %v", err)
	}
	for i, b := range f.batches {
		applied, err := applyToDB(db, b)
		if err != nil {
			t.Fatalf("batch %d apply: %v", i, err)
		}
		if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	fp := fingerprint(t, s)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return fp
}

func fingerprint(t *testing.T, s *core.Summarizer) []byte {
	t.Helper()
	fp, err := encodeCheckpoint(s)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

func TestRecordRoundTrip(t *testing.T) {
	batch := dataset.Batch{
		{Op: dataset.OpInsert, ID: 7, P: vecmath.Point{1.5, -2.25}, Label: 3},
		{Op: dataset.OpDelete, ID: 2},
		{Op: dataset.OpInsert, ID: 8, P: vecmath.Point{0, 1e-300}, Label: dataset.Noise},
	}
	payload, err := encodePayload(2, 41, batch)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.ordinal != 41 || rec.dim != 2 || len(rec.batch) != 3 {
		t.Fatalf("got ordinal=%d dim=%d len=%d", rec.ordinal, rec.dim, len(rec.batch))
	}
	for i, u := range rec.batch {
		want := batch[i]
		if u.Op != want.Op || u.ID != want.ID {
			t.Fatalf("update %d: got %+v want %+v", i, u, want)
		}
		if want.Op == dataset.OpInsert && (u.Label != want.Label || !u.P.Equal(want.P)) {
			t.Fatalf("insert %d: got %+v want %+v", i, u, want)
		}
	}
}

func TestEncodePayloadRejectsBadUpdates(t *testing.T) {
	if _, err := encodePayload(2, 0, dataset.Batch{{Op: dataset.OpInsert, P: vecmath.Point{1}}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := encodePayload(2, 0, dataset.Batch{{Op: dataset.Op(9)}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestScanSegmentTornAndCorrupt(t *testing.T) {
	p1, _ := encodePayload(1, 0, dataset.Batch{{Op: dataset.OpInsert, ID: 1, P: vecmath.Point{2}, Label: 0}})
	p2, _ := encodePayload(1, 1, dataset.Batch{{Op: dataset.OpDelete, ID: 1}})
	seg := append([]byte(segmentMagic), frameRecord(p1)...)
	full := append(append([]byte(nil), seg...), frameRecord(p2)...)

	recs, n, err := scanSegment(full)
	if err != nil || len(recs) != 2 || n != len(full) {
		t.Fatalf("clean scan: recs=%d n=%d err=%v", len(recs), n, err)
	}
	// Torn tail: every strict prefix of record 2 yields record 1 plus a
	// tail error at the record boundary.
	for cut := len(seg) + 1; cut < len(full); cut++ {
		recs, n, err := scanSegment(full[:cut])
		if len(recs) != 1 || n != len(seg) || err == nil {
			t.Fatalf("cut %d: recs=%d n=%d err=%v", cut, len(recs), n, err)
		}
	}
	// Bit flip in the second payload: CRC catches it.
	corrupt := append([]byte(nil), full...)
	corrupt[len(full)-1] ^= 0x40
	recs, n, err = scanSegment(corrupt)
	if len(recs) != 1 || n != len(seg) || !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupt: recs=%d n=%d err=%v", len(recs), n, err)
	}
	if _, _, err := scanSegment([]byte("NOTMAGIC rest")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	f := makeFixture(t, 300, 2)
	db := f.initial.Clone()
	s, err := core.New(db, coreOpts())
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	for _, b := range f.batches {
		applied, _ := applyToDB(db, b)
		if _, err := s.ApplyBatch(applied); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	data, err := encodeCheckpoint(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cp, err := decodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if int(cp.ordinal) != s.Batches() || cp.dim != db.Dim() || len(cp.recs) != db.Len() {
		t.Fatalf("got ordinal=%d dim=%d recs=%d", cp.ordinal, cp.dim, len(cp.recs))
	}
	db2, err := cp.restoreDB()
	if err != nil {
		t.Fatalf("restoreDB: %v", err)
	}
	if db2.Len() != db.Len() || db2.NextID() != db.NextID() {
		t.Fatalf("restored len=%d nextID=%d want %d %d", db2.Len(), db2.NextID(), db.Len(), db.NextID())
	}
	s2, err := core.Load(db2, bytes.NewReader(cp.snapshot), coreOpts(), int(cp.ordinal), int(cp.totalRebuilt))
	if err != nil {
		t.Fatalf("core.Load: %v", err)
	}
	if got := fingerprint(t, s2); !bytes.Equal(got, data) {
		t.Fatal("loaded summarizer re-encodes to different checkpoint bytes")
	}
	// Every single-byte corruption after the magic is detected.
	for _, off := range []int{len(checkpointMagic), len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, err := decodeCheckpoint(bad); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("corruption at %d undetected: %v", off, err)
		}
	}
}

func TestNewRefusesExistingState(t *testing.T) {
	f := makeFixture(t, 250, 1)
	dir := t.TempDir()
	runAll(t, f, dir, Options{CheckpointEvery: 2})
	db := f.initial.Clone()
	if _, _, err := New(db, coreOpts(), Options{Dir: dir}); err == nil {
		t.Fatal("New accepted a directory with durable state")
	}
	if !HasState(dir) {
		t.Fatal("HasState false on populated directory")
	}
	if HasState(t.TempDir()) {
		t.Fatal("HasState true on empty directory")
	}
}

func TestResumeEmptyDir(t *testing.T) {
	if _, err := Resume(coreOpts(), Options{Dir: t.TempDir()}); !errors.Is(err, ErrNoState) {
		t.Fatalf("want ErrNoState, got %v", err)
	}
}

// TestResumeMatchesUninterrupted is the core durability property: kill a
// run anywhere (here: between batches, without Close), Resume, finish the
// workload, and the final state is bit-identical to the uninterrupted run.
func TestResumeMatchesUninterrupted(t *testing.T) {
	f := makeFixture(t, 400, 8)
	want := runAll(t, f, t.TempDir(), Options{CheckpointEvery: 3})

	for _, killAt := range []int{0, 1, 4, 7} {
		dir := t.TempDir()
		db := f.initial.Clone()
		s, _, err := New(db, coreOpts(), Options{Dir: dir, CheckpointEvery: 3})
		if err != nil {
			t.Fatalf("kill@%d New: %v", killAt, err)
		}
		for i := 0; i < killAt; i++ {
			applied, _ := applyToDB(db, f.batches[i])
			if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
				t.Fatalf("kill@%d batch %d: %v", killAt, i, err)
			}
		}
		// Simulated kill: the log is simply abandoned, never Closed.
		sink := telemetry.NewSink()
		st, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 3, Telemetry: sink})
		if err != nil {
			t.Fatalf("kill@%d resume: %v", killAt, err)
		}
		if st.Batches != killAt {
			t.Fatalf("kill@%d resumed at batch %d", killAt, st.Batches)
		}
		for i := st.Batches; i < len(f.batches); i++ {
			applied, err := applyToDB(st.DB, f.batches[i])
			if err != nil {
				t.Fatalf("kill@%d batch %d apply: %v", killAt, i, err)
			}
			if _, err := st.Summarizer.ApplyBatchContext(context.Background(), applied); err != nil {
				t.Fatalf("kill@%d batch %d: %v", killAt, i, err)
			}
		}
		if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
			t.Fatalf("kill@%d: recovered state differs from uninterrupted run", killAt)
		}
	}
}

// TestResumeCorruptCheckpointFallsBack flips a byte in the newest
// checkpoint: Resume must quarantine it and recover from the previous
// one, replaying the extra WAL suffix.
func TestResumeCorruptCheckpointFallsBack(t *testing.T) {
	f := makeFixture(t, 400, 8)
	want := runAll(t, f, t.TempDir(), Options{CheckpointEvery: 3})

	dir := t.TempDir()
	runAll(t, f, dir, Options{CheckpointEvery: 3})
	ckpts, _, err := listState(dir)
	if err != nil || len(ckpts) < 2 {
		t.Fatalf("want ≥2 checkpoints, got %d (%v)", len(ckpts), err)
	}
	newest := ckpts[len(ckpts)-1]
	data, err := os.ReadFile(newest.path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(newest.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sink := telemetry.NewSink()
	st, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 3, Telemetry: sink})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st.Batches != len(f.batches) {
		t.Fatalf("resumed at batch %d, want %d", st.Batches, len(f.batches))
	}
	if st.Replayed == 0 {
		t.Fatal("fallback recovery replayed nothing — newest checkpoint was trusted?")
	}
	if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery differs from uninterrupted run")
	}
	if sink.Metrics.Counter(telemetry.MetricWALQuarantined).Value() == 0 {
		t.Fatal("no quarantine counted")
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*"+quarantineSuffix))
	if len(quarantined) != 1 {
		t.Fatalf("want 1 quarantined file, got %v", quarantined)
	}
}

// TestResumeTruncatesTornTail garbles the newest segment's tail: Resume
// must truncate it in place and recover the intact prefix.
func TestResumeTruncatesTornTail(t *testing.T) {
	f := makeFixture(t, 400, 8)
	dir := t.TempDir()
	runAll(t, f, dir, Options{CheckpointEvery: 3})
	_, segs, err := listState(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	// Find a segment with at least one record and chop into its last one.
	var target string
	var keep int64
	for i := len(segs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(segs[i].path)
		if err != nil {
			t.Fatal(err)
		}
		if recs, validLen, _ := scanSegment(data); len(recs) > 0 {
			target, keep = segs[i].path, int64(validLen-3)
			break
		}
	}
	if target == "" {
		t.Fatal("no segment with records")
	}
	if err := os.Truncate(target, keep); err != nil {
		t.Fatal(err)
	}

	sink := telemetry.NewSink()
	st, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 3, Telemetry: sink})
	if err != nil {
		t.Fatalf("resume after torn tail: %v", err)
	}
	if sink.Metrics.Counter(telemetry.MetricWALTruncations).Value() == 0 {
		t.Fatal("no truncation counted")
	}
	if err := st.Summarizer.Set().CheckInvariants(); err != nil {
		t.Fatalf("recovered set: %v", err)
	}
	if st.Log.Poisoned() != nil {
		t.Fatalf("recovered log poisoned: %v", st.Log.Poisoned())
	}
}

// TestAppendSyncFailurePoisons arms a sync failure: the failing batch is
// rejected, the log refuses everything afterwards, and Resume still works.
// A failed fsync leaves the record's durability UNKNOWN — it may or may
// not survive — so recovery is allowed to land on either side of the
// failing batch; what must hold is that continuing from wherever it
// landed reproduces the uninterrupted run bit-for-bit.
func TestAppendSyncFailurePoisons(t *testing.T) {
	f := makeFixture(t, 300, 3)
	want := runAll(t, f, t.TempDir(), Options{})

	dir := t.TempDir()
	reg := failpoint.New(1)
	reg.ArmError(FailAppendSync, 2, nil)
	db := f.initial.Clone()
	opts := coreOpts()
	s, l, err := New(db, opts, Options{Dir: dir, Failpoints: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	applied, _ := applyToDB(db, f.batches[0])
	if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
		t.Fatalf("batch 0: %v", err)
	}
	applied, _ = applyToDB(db, f.batches[1])
	if _, err := s.ApplyBatchContext(context.Background(), applied); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("batch 1: want injected error, got %v", err)
	}
	if l.Poisoned() == nil {
		t.Fatal("sync failure did not poison the log")
	}
	applied, _ = applyToDB(db, f.batches[2])
	if _, err := s.ApplyBatchContext(context.Background(), applied); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("batch 2: want ErrPoisoned, got %v", err)
	}
	st, err := Resume(opts, Options{Dir: dir})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st.Batches < 1 || st.Batches > 2 {
		t.Fatalf("resumed at %d, want 1 or 2", st.Batches)
	}
	for i := st.Batches; i < len(f.batches); i++ {
		applied, err := applyToDB(st.DB, f.batches[i])
		if err != nil {
			t.Fatalf("batch %d apply: %v", i, err)
		}
		if _, err := st.Summarizer.ApplyBatchContext(context.Background(), applied); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
		t.Fatal("post-poison recovery differs from uninterrupted run")
	}
}

// TestErrorInjectionWithoutBytesKeepsLogAlive arms a pure error (keep=0)
// on the append write: the batch fails but nothing reached disk, so the
// log keeps accepting batches.
func TestErrorInjectionWithoutBytesKeepsLogAlive(t *testing.T) {
	f := makeFixture(t, 300, 2)
	reg := failpoint.New(1)
	reg.ArmError(FailAppendWrite, 1, nil)
	db := f.initial.Clone()
	s, l, err := New(db, coreOpts(), Options{Dir: t.TempDir(), Failpoints: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	applied, _ := applyToDB(db, f.batches[0])
	if _, err := s.ApplyBatchContext(context.Background(), applied); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if l.Poisoned() != nil {
		t.Fatalf("keep=0 injection poisoned the log: %v", l.Poisoned())
	}
	// The batch is already in the database; retry the summarizer apply.
	if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if s.Batches() != 1 {
		t.Fatalf("batches=%d want 1", s.Batches())
	}
}

// TestCheckpointFailureDoesNotPoison arms a rename failure on the first
// automatic checkpoint: the apply reports the error but the log stays
// healthy and the next checkpoint succeeds.
func TestCheckpointFailureDoesNotPoison(t *testing.T) {
	f := makeFixture(t, 300, 3)
	reg := failpoint.New(1)
	db := f.initial.Clone()
	s, l, err := New(db, coreOpts(), Options{Dir: t.TempDir(), CheckpointEvery: 1, Failpoints: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg.ArmError(FailCkptRename, 1, nil)
	applied, _ := applyToDB(db, f.batches[0])
	if _, err := s.ApplyBatchContext(context.Background(), applied); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected checkpoint error, got %v", err)
	}
	if l.Poisoned() != nil {
		t.Fatalf("checkpoint failure poisoned the log: %v", l.Poisoned())
	}
	applied, _ = applyToDB(db, f.batches[1])
	if _, err := s.ApplyBatchContext(context.Background(), applied); err != nil {
		t.Fatalf("next batch: %v", err)
	}
}

// TestGCRetainsCoveringState runs long enough for GC to fire and checks
// what remains on disk still resumes, with old checkpoints bounded.
func TestGCRetainsCoveringState(t *testing.T) {
	f := makeFixture(t, 400, 10)
	dir := t.TempDir()
	want := runAll(t, f, dir, Options{CheckpointEvery: 2, KeepCheckpoints: 2})
	ckpts, _, err := listState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) > 2 {
		t.Fatalf("GC left %d checkpoints, want ≤2", len(ckpts))
	}
	st, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 2, KeepCheckpoints: 2})
	if err != nil {
		t.Fatalf("resume after GC: %v", err)
	}
	if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
		t.Fatal("state after GC differs")
	}
}

// TestAppendRollbackResetsOffset simulates the aftermath of a failed
// partial write — bytes on disk past the record boundary AND a file
// offset advanced past it (os.File.Truncate does not move the offset) —
// and checks rollbackAppend restores both, so the next append leaves no
// zero-filled gap for recovery to trip over.
func TestAppendRollbackResetsOffset(t *testing.T) {
	l, err := newLog(2, Options{Dir: t.TempDir()}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.openSegment(0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.f.Write([]byte("partial-garbage")); err != nil {
		t.Fatal(err)
	}
	if err := l.rollbackAppend(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	batch := dataset.Batch{{Op: dataset.OpDelete, ID: 1}}
	if err := l.BeforeApply(context.Background(), 0, batch); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(l.dir, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	recs, n, tailErr := scanSegment(data)
	if tailErr != nil || len(recs) != 1 || n != len(data) {
		t.Fatalf("segment after rollback: recs=%d n=%d/%d err=%v", len(recs), n, len(data), tailErr)
	}
	if recs[0].ordinal != 0 || len(recs[0].batch) != 1 {
		t.Fatalf("recovered record %+v", recs[0])
	}
}

// TestOversizedBatchRejectedBeforeWrite feeds the log a batch whose
// encoding would exceed maxRecordBytes: it must be rejected before any
// byte reaches the segment — recovery's scanner refuses such frames, so
// acking one durable would silently lose it — and the log stays healthy.
func TestOversizedBatchRejectedBeforeWrite(t *testing.T) {
	const dim = maxRecordBytes / 8 // one insert at this dim overflows the limit
	l, err := newLog(dim, Options{Dir: t.TempDir()}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.openSegment(0); err != nil {
		t.Fatal(err)
	}
	huge := dataset.Batch{{Op: dataset.OpInsert, ID: 1, P: make(vecmath.Point, dim), Label: 0}}
	if err := l.BeforeApply(context.Background(), 0, huge); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
	if l.Poisoned() != nil {
		t.Fatalf("oversized batch poisoned the log: %v", l.Poisoned())
	}
	if l.NextOrdinal() != 0 {
		t.Fatalf("ordinal advanced to %d for an unlogged batch", l.NextOrdinal())
	}
	// Deletes are small regardless of dim: the same ordinal still appends.
	if err := l.BeforeApply(context.Background(), 0, dataset.Batch{{Op: dataset.OpDelete, ID: 2}}); err != nil {
		t.Fatalf("append after rejection: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(l.dir, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if recs, _, tailErr := scanSegment(data); tailErr != nil || len(recs) != 1 {
		t.Fatalf("segment holds recs=%d err=%v; oversized bytes leaked", len(recs), tailErr)
	}
}

// TestReplayFaultTruncatesWALNotCheckpoints appends a forged record that
// decodes cleanly but cannot be re-applied (a delete of an ID the
// database never held). The old ladder quarantined the newest checkpoint,
// then every older one died replaying through the same record; now the
// WAL is truncated just before the bad record and the same checkpoint
// recovers everything up to it.
func TestReplayFaultTruncatesWALNotCheckpoints(t *testing.T) {
	f := makeFixture(t, 400, 8)
	want := runAll(t, f, t.TempDir(), Options{CheckpointEvery: 3})
	dir := t.TempDir()
	runAll(t, f, dir, Options{CheckpointEvery: 3})

	_, segs, err := listState(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	newest := segs[len(segs)-1]
	payload, err := encodePayload(f.initial.Dim(), uint64(len(f.batches)), dataset.Batch{{Op: dataset.OpDelete, ID: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := os.OpenFile(newest.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Write(frameRecord(payload)); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	sink := telemetry.NewSink()
	st, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 3, Telemetry: sink})
	if err != nil {
		t.Fatalf("resume over replay fault: %v", err)
	}
	if st.Batches != len(f.batches) {
		t.Fatalf("resumed at batch %d, want %d", st.Batches, len(f.batches))
	}
	if got := fingerprint(t, st.Summarizer); !bytes.Equal(got, want) {
		t.Fatal("recovery over replay fault differs from uninterrupted run")
	}
	if n := sink.Metrics.Counter(telemetry.MetricWALQuarantined).Value(); n != 0 {
		t.Fatalf("replay fault quarantined %d files; should only truncate the WAL", n)
	}
	if sink.Metrics.Counter(telemetry.MetricWALTruncations).Value() == 0 {
		t.Fatal("no WAL truncation counted for the replay fault")
	}
	// The bad record is gone from disk: a second resume replays cleanly
	// without repairs.
	sink2 := telemetry.NewSink()
	st2, err := Resume(coreOpts(), Options{Dir: dir, CheckpointEvery: 3, Telemetry: sink2})
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if got := fingerprint(t, st2.Summarizer); !bytes.Equal(got, want) {
		t.Fatal("second resume differs")
	}
	if sink2.Metrics.Counter(telemetry.MetricWALTruncations).Value() != 0 {
		t.Fatal("repair did not stick: second resume truncated again")
	}
}

// TestOrdinalMismatchPoisons feeds the log an out-of-order ordinal.
func TestOrdinalMismatchPoisons(t *testing.T) {
	l, err := newLog(2, Options{Dir: t.TempDir()}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.openSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := l.BeforeApply(context.Background(), 3, nil); err == nil {
		t.Fatal("ordinal skip accepted")
	}
	if l.Poisoned() == nil {
		t.Fatal("ordinal skip did not poison")
	}
}

func TestListStateIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"wal-0000000000000004.log",
		"ckpt-0000000000000004.ckpt",
		"ckpt-0000000000000002.ckpt" + tmpSuffix,
		"ckpt-0000000000000001.ckpt" + quarantineSuffix,
		"wal-123.log", "notes.txt",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ckpts, segs, err := listState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0].ordinal != 4 {
		t.Fatalf("ckpts=%v", ckpts)
	}
	if len(segs) != 1 || segs[0].ordinal != 4 {
		t.Fatalf("segs=%v", segs)
	}
	if !strings.HasSuffix(segs[0].path, "wal-0000000000000004.log") {
		t.Fatalf("seg path %q", segs[0].path)
	}
}
